"""Pass-manager pipeline: equivalence, registries, stage-prefix cache.

Pins the tentpole refactor's contract: the composable pipeline must be
bit-identical (by ``CompiledProgram.fingerprint()``) to the seed
monolithic ``compile_circuit`` sequence for every variant, the
variant/pass registries must fail loudly on unknown names, and the
stage-prefix cache must reuse exactly the stages whose inputs agree.
"""

import dataclasses

import pytest

from repro.compiler import (
    CompiledProgram,
    CompilerOptions,
    MappingPass,
    PassManager,
    PeepholePass,
    ReliabilityPass,
    SchedulingPass,
    SwapInsertPass,
    VerifyPass,
    apply_peephole,
    build_pipeline,
    compile_circuit,
    estimate_reliability,
    insert_swaps,
    make_mapper,
    make_pass,
    mapping_stage_fingerprint,
    schedule_circuit,
)
from repro.exceptions import CompilationError
from repro.hardware import ReliabilityTables, default_ibmq16_calibration
from repro.programs import build_benchmark
from repro.runtime import CompileCache, StageCache, SweepCell, run_sweep


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def tables(cal):
    return ReliabilityTables(cal)


ALL_OPTIONS = [CompilerOptions.qiskit(), CompilerOptions.t_smt(),
               CompilerOptions.t_smt_star(), CompilerOptions.r_smt_star(),
               CompilerOptions.greedy_e(), CompilerOptions.greedy_v()]

EQUIVALENCE_BENCHMARKS = ("BV4", "HS4", "Toffoli")


def compile_reference(circuit, calibration, options, tables):
    """The seed repo's monolithic compile_circuit sequence, verbatim:
    mapping -> scheduling -> SWAP insertion -> optional peephole ->
    reliability estimation."""
    mapper = make_mapper(options)
    mapping = mapper.run(circuit, calibration, tables)
    schedule = schedule_circuit(circuit, mapping.placement, calibration,
                                tables, options)
    physical = insert_swaps(circuit, schedule, mapping.placement,
                            calibration)
    if options.peephole:
        physical = apply_peephole(physical, calibration)
    reliability = estimate_reliability(circuit, schedule, mapping.placement,
                                       calibration)
    return CompiledProgram(
        logical=circuit,
        physical=physical,
        placement=dict(mapping.placement),
        schedule=schedule,
        reliability=reliability,
        options=options,
        mapping=mapping,
        compile_time=0.0,
        calibration_label=calibration.label,
    )


class TestPipelineEquivalence:
    """PassManager output == seed monolith output, bit for bit."""

    @pytest.mark.parametrize("options", ALL_OPTIONS,
                             ids=[o.variant for o in ALL_OPTIONS])
    @pytest.mark.parametrize("bench", EQUIVALENCE_BENCHMARKS)
    def test_fingerprint_identical_to_seed_path(self, options, bench, cal,
                                                tables):
        circuit = build_benchmark(bench)
        reference = compile_reference(circuit, cal, options, tables)
        pipelined = compile_circuit(circuit, cal, options, tables=tables)
        assert pipelined.fingerprint() == reference.fingerprint()

    def test_peephole_config_identical_to_seed_path(self, cal, tables):
        options = CompilerOptions.qiskit().with_(peephole=True)
        circuit = build_benchmark("Toffoli")
        reference = compile_reference(circuit, cal, options, tables)
        pipelined = compile_circuit(circuit, cal, options, tables=tables)
        assert pipelined.fingerprint() == reference.fingerprint()

    def test_stage_cache_does_not_change_output(self, cal, tables):
        options = CompilerOptions.r_smt_star()
        circuit = build_benchmark("BV4")
        plain = compile_circuit(circuit, cal, options, tables=tables)
        cached = compile_circuit(circuit, cal, options, tables=tables,
                                 stage_cache=StageCache())
        assert plain.fingerprint() == cached.fingerprint()

    def test_pass_timings_cover_pipeline(self, cal, tables):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star(),
                                  tables=tables)
        names = [t.name for t in program.pass_timings]
        assert names == ["mapping[r-smt*]", "schedule", "swap-insert",
                         "reliability"]
        assert all(t.seconds >= 0 and not t.cached
                   for t in program.pass_timings)
        assert "mapping[r-smt*]" in program.timing_report()

    def test_verify_pass_attaches_report(self, cal, tables):
        options = CompilerOptions.greedy_e()
        program = build_pipeline(options, verify=True).run(
            build_benchmark("BV4"), cal, options, tables=tables)
        assert program.verification is not None
        assert program.verification.ok
        assert [t.name for t in program.pass_timings][-1] == "verify"


class TestRegistries:
    def test_unknown_variant_rejected_by_mapping_pass(self):
        with pytest.raises(CompilationError, match="no mapper registered"):
            MappingPass("annealer")

    def test_unknown_variant_rejected_by_make_mapper(self):
        options = CompilerOptions.r_smt_star()
        bogus = dataclasses.replace(options)
        object.__setattr__(bogus, "variant", "annealer")
        with pytest.raises(CompilationError, match="no mapper registered"):
            make_mapper(bogus)

    def test_unknown_pass_rejected(self):
        with pytest.raises(CompilationError, match="no pass registered"):
            make_pass("transpile", CompilerOptions.r_smt_star())

    def test_every_registered_pass_instantiates(self):
        from repro.compiler import registered_passes

        options = CompilerOptions.r_smt_star()
        for name in registered_passes():
            assert make_pass(name, options).name

    def test_anonymous_pass_rejected_by_manager(self):
        class Nameless:
            name = ""
            produces = ""

        with pytest.raises(CompilationError, match="must declare"):
            PassManager([Nameless()])

    def test_canonical_pipeline_shape(self):
        manager = build_pipeline(CompilerOptions.qiskit().with_(
            peephole=True), verify=True)
        kinds = [type(p) for p in manager.passes]
        assert kinds == [MappingPass, SchedulingPass, SwapInsertPass,
                         PeepholePass, ReliabilityPass, VerifyPass]


class TestStagePrefixCache:
    """Post-mapping option changes reuse the mapping artifact."""

    def test_routing_change_reuses_mapping(self, cal):
        cache = CompileCache()
        circuit = build_benchmark("BV4")
        base = CompilerOptions.r_smt_star()
        first, _ = cache.get_or_compile(circuit, cal, base)
        second, hit = cache.get_or_compile(circuit, cal,
                                           base.with_(routing="rr"))
        assert not hit  # distinct compile keys...
        by_name = {t.name: t for t in second.pass_timings}
        assert by_name["mapping[r-smt*]"].cached  # ...shared mapping
        assert not by_name["schedule"].cached
        assert first.placement == second.placement
        assert cache.stages.stats.hits >= 1

    def test_peephole_change_reuses_prefix_through_swap_insert(self, cal):
        cache = CompileCache()
        circuit = build_benchmark("Toffoli")
        base = CompilerOptions.qiskit()
        cache.get_or_compile(circuit, cal, base)
        tidy, _ = cache.get_or_compile(circuit, cal,
                                       base.with_(peephole=True))
        by_name = {t.name: t for t in tidy.pass_timings}
        assert by_name["mapping[qiskit]"].cached
        assert by_name["schedule"].cached
        assert by_name["swap-insert"].cached
        assert not by_name["peephole"].cached

    def test_omega_change_misses_mapping(self, cal):
        cache = CompileCache()
        circuit = build_benchmark("BV4")
        cache.get_or_compile(circuit, cal, CompilerOptions.r_smt_star(0.5))
        second, _ = cache.get_or_compile(circuit, cal,
                                         CompilerOptions.r_smt_star(1.0))
        by_name = {t.name: t for t in second.pass_timings}
        assert not by_name["mapping[r-smt*]"].cached

    def test_verify_pass_config_distinguishes_stage_keys(self):
        # Differently configured VerifyPass instances must never alias
        # in the stage cache (a lax cached report would skip the
        # strict arm's raise and its semantic check).
        options = CompilerOptions.r_smt_star()
        strict = VerifyPass().fingerprint(options)
        lax = VerifyPass(strict=False, semantic=False).fingerprint(options)
        assert strict != lax

    def test_mapping_fingerprint_ignores_post_mapping_knobs(self):
        base = CompilerOptions.r_smt_star()
        assert mapping_stage_fingerprint(base) == \
            mapping_stage_fingerprint(base.with_(routing="rr",
                                                 peephole=True))
        assert mapping_stage_fingerprint(base) != \
            mapping_stage_fingerprint(base.with_(omega=1.0))
        assert mapping_stage_fingerprint(base) != \
            mapping_stage_fingerprint(CompilerOptions.greedy_e())

    def test_sweep_stage_stats_deterministic_across_workers(self, cal):
        cells = [SweepCell(circuit=build_benchmark(bench), calibration=cal,
                           options=CompilerOptions.r_smt_star().with_(
                               routing=routing, peephole=peephole),
                           simulate=False,
                           key=(bench, routing, peephole))
                 for bench in ("BV4", "HS4")
                 for routing in ("1bp", "rr")
                 for peephole in (False, True)]
        serial = run_sweep(cells, workers=0)
        parallel = run_sweep(cells, workers=2)
        assert parallel.workers == 2
        # One mapping solve per benchmark; the other 3 option combos
        # per benchmark hit the stage cache — at any worker count.
        for sweep in (serial, parallel):
            assert sweep.compile_stats.misses == len(cells)
            assert sweep.stage_stats.hits == \
                serial.stage_stats.hits
        for ser, par in zip(serial, parallel):
            assert ser.compiled.fingerprint() == par.compiled.fingerprint()


class TestCompiledProgramMemo:
    def test_fingerprint_memoized_via_cached_property(self, cal, tables):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.qiskit(), tables=tables)
        assert "_fingerprint" not in program.__dict__
        value = program.fingerprint()
        assert program.__dict__["_fingerprint"] == value
        assert program.fingerprint() is value
