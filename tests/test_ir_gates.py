"""Unit tests for repro.ir.gates."""

import math

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.ir.gates import (
    ALL_OPERATIONS,
    PARAMETRIC_GATES,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
    gate_matrix,
    inverse_gate,
)


class TestGateConstruction:
    def test_simple_single_qubit_gate(self):
        g = Gate("h", (0,))
        assert g.name == "h"
        assert g.qubits == (0,)
        assert g.is_unitary
        assert not g.is_two_qubit

    def test_cnot_control_target(self):
        g = Gate("cx", (2, 5))
        assert g.is_cnot
        assert g.control == 2
        assert g.target == 5

    def test_measure_requires_cbit(self):
        with pytest.raises(CircuitError):
            Gate("measure", (0,))

    def test_measure_with_cbit(self):
        g = Gate("measure", (3,), cbit=1)
        assert g.is_measure
        assert g.cbit == 1
        assert not g.is_unitary

    def test_unknown_operation_rejected(self):
        with pytest.raises(CircuitError):
            Gate("ccx", (0, 1, 2))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Gate("x", (-1,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            Gate("h", (0, 1))
        with pytest.raises(CircuitError):
            Gate("cx", (0,))

    def test_parametric_gate_requires_param(self):
        with pytest.raises(CircuitError):
            Gate("rz", (0,))
        g = Gate("rz", (0,), param=0.5)
        assert g.param == 0.5

    def test_non_parametric_rejects_param(self):
        with pytest.raises(CircuitError):
            Gate("h", (0,), param=1.0)

    def test_cbit_on_non_measure_rejected(self):
        with pytest.raises(CircuitError):
            Gate("x", (0,), cbit=0)

    def test_control_property_on_non_cnot(self):
        with pytest.raises(CircuitError):
            _ = Gate("h", (0,)).control

    def test_gates_are_hashable_and_equal(self):
        assert Gate("h", (0,)) == Gate("h", (0,))
        assert len({Gate("h", (0,)), Gate("h", (0,))}) == 1


class TestRemap:
    def test_remap_with_dict(self):
        g = Gate("cx", (0, 1)).remap({0: 5, 1: 9})
        assert g.qubits == (5, 9)

    def test_remap_with_callable(self):
        g = Gate("cx", (0, 1)).remap(lambda q: q + 3)
        assert g.qubits == (3, 4)

    def test_remap_preserves_param_and_cbit(self):
        g = Gate("rz", (0,), param=1.5).remap({0: 2})
        assert g.param == 1.5
        m = Gate("measure", (0,), cbit=4).remap({0: 7})
        assert m.cbit == 4


class TestInverse:
    @pytest.mark.parametrize("name", ["h", "x", "y", "z", "id"])
    def test_self_inverse_gates(self, name):
        g = Gate(name, (0,))
        assert inverse_gate(g) == g

    def test_s_t_inverses(self):
        assert inverse_gate(Gate("s", (0,))).name == "sdg"
        assert inverse_gate(Gate("sdg", (0,))).name == "s"
        assert inverse_gate(Gate("t", (0,))).name == "tdg"
        assert inverse_gate(Gate("tdg", (0,))).name == "t"

    def test_rotation_inverse_negates_angle(self):
        g = inverse_gate(Gate("rz", (0,), param=0.7))
        assert g.param == pytest.approx(-0.7)

    def test_measure_not_invertible(self):
        with pytest.raises(CircuitError):
            inverse_gate(Gate("measure", (0,), cbit=0))


class TestMatrices:
    @pytest.mark.parametrize("name", sorted(SINGLE_QUBIT_GATES - PARAMETRIC_GATES))
    def test_single_qubit_unitarity(self, name):
        m = np.array(gate_matrix(name), dtype=complex)
        assert m.shape == (2, 2)
        assert np.allclose(m @ m.conj().T, np.eye(2))

    @pytest.mark.parametrize("name", sorted(TWO_QUBIT_GATES))
    def test_two_qubit_unitarity(self, name):
        m = np.array(gate_matrix(name), dtype=complex)
        assert m.shape == (4, 4)
        assert np.allclose(m @ m.conj().T, np.eye(4))

    @pytest.mark.parametrize("name", sorted(PARAMETRIC_GATES))
    def test_parametric_unitarity(self, name):
        m = np.array(gate_matrix(name, 0.37), dtype=complex)
        assert np.allclose(m @ m.conj().T, np.eye(2))

    def test_inverse_matrix_is_conjugate_transpose(self):
        for name in ("s", "t", "h", "x"):
            g = Gate(name, (0,))
            m = np.array(gate_matrix(g.name, g.param), dtype=complex)
            gi = inverse_gate(g)
            mi = np.array(gate_matrix(gi.name, gi.param), dtype=complex)
            assert np.allclose(mi, m.conj().T)

    def test_h_matrix_value(self):
        m = np.array(gate_matrix("h"), dtype=complex)
        s = 1 / math.sqrt(2)
        assert np.allclose(m, [[s, s], [s, -s]])

    def test_matrix_for_measure_rejected(self):
        with pytest.raises(CircuitError):
            gate_matrix("measure")

    def test_param_required(self):
        with pytest.raises(CircuitError):
            gate_matrix("rx")

    def test_all_operations_cover_gate_sets(self):
        assert SINGLE_QUBIT_GATES <= ALL_OPERATIONS
        assert TWO_QUBIT_GATES <= ALL_OPERATIONS
