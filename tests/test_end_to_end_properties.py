"""End-to-end property tests: random programs, random machines, every
compiler variant — the compiled artifact must always verify.

This is the repository's strongest invariant: for ANY program that fits
the machine and ANY calibration, every variant must emit a physical
program that (a) respects the coupling map, (b) keeps measurements
terminal, (c) has serialized per-qubit timing, and (d) is semantically
equivalent to the logical program.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, compile_circuit, verify_compiled
from repro.hardware import CalibrationGenerator, GridTopology, ReliabilityTables
from repro.programs import random_circuit

VARIANTS = [CompilerOptions.qiskit(), CompilerOptions.t_smt(),
            CompilerOptions.t_smt_star(), CompilerOptions.r_smt_star(),
            CompilerOptions.greedy_e(), CompilerOptions.greedy_v()]

# Small solver budgets keep the property run fast; results need not be
# optimal to be *valid*.
VARIANTS = [o.with_(solver_time_limit=3.0) for o in VARIANTS]


@st.composite
def compilation_cases(draw):
    seed = draw(st.integers(0, 10_000))
    n_qubits = draw(st.integers(2, 5))
    n_gates = draw(st.integers(1, 25))
    mx = draw(st.integers(2, 4))
    my = draw(st.integers(2, 3))
    day = draw(st.integers(0, 3))
    if mx * my < n_qubits:
        n_qubits = mx * my
    variant = draw(st.integers(0, len(VARIANTS) - 1))
    return seed, n_qubits, n_gates, mx, my, day, variant


class TestCompileAlwaysVerifies:
    @given(case=compilation_cases())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_program_random_machine_random_variant(self, case):
        seed, n_qubits, n_gates, mx, my, day, variant = case
        if n_qubits < 2:
            return
        circuit = random_circuit(n_qubits, n_gates, seed=seed)
        topo = GridTopology(mx, my)
        cal = CalibrationGenerator(topo, seed=seed % 17).snapshot(day)
        program = compile_circuit(circuit, cal, VARIANTS[variant])
        report = verify_compiled(program, cal)
        assert report.ok, (case, report.errors)

    @given(case=compilation_cases())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_peephole_never_breaks_verification(self, case):
        seed, n_qubits, n_gates, mx, my, day, variant = case
        circuit = random_circuit(n_qubits, n_gates, seed=seed)
        topo = GridTopology(mx, my)
        cal = CalibrationGenerator(topo, seed=seed % 17).snapshot(day)
        options = VARIANTS[variant].with_(peephole=True)
        program = compile_circuit(circuit, cal, options)
        report = verify_compiled(program, cal)
        assert report.ok, (case, report.errors)


class TestEstimatesAreConsistent:
    @given(seed=st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_reliability_estimate_in_unit_interval(self, seed):
        circuit = random_circuit(4, 20, seed=seed)
        cal = CalibrationGenerator(GridTopology(4, 2),
                                   seed=seed % 13).snapshot(0)
        program = compile_circuit(circuit, cal, CompilerOptions.greedy_e())
        est = program.reliability
        assert 0.0 < est.score <= 1.0
        assert 0.0 < est.round_trip_score <= est.score + 1e-12
        assert program.duration >= 0
        assert program.swap_count >= 0

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_qasm_roundtrip_for_any_compilation(self, seed):
        from repro.ir.qasm import qasm_to_circuit
        circuit = random_circuit(3, 15, seed=seed)
        cal = CalibrationGenerator(GridTopology(3, 2),
                                   seed=1).snapshot(0)
        program = compile_circuit(circuit, cal, CompilerOptions.greedy_v())
        back = qasm_to_circuit(program.qasm())
        assert len(back) == len(program.physical.circuit)
