"""Tests for device presets and the command-line interface."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import TopologyError
from repro.hardware import (
    device_calibration,
    device_topology,
    ibmq5_topology,
    ibmq20_topology,
    linear_topology,
)


class TestDevices:
    def test_registry_lookup(self):
        assert device_topology("ibmq16").n_qubits == 16
        assert device_topology("IBMQ20").n_qubits == 20
        assert device_topology("ibmq5").n_qubits == 5

    def test_unknown_device(self):
        with pytest.raises(TopologyError):
            device_topology("quantum-toaster")

    def test_linear_topology_is_a_chain(self):
        topo = linear_topology(6)
        assert topo.n_qubits == 6
        assert len(topo.edges()) == 5
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(3) == [2, 4]

    def test_linear_rejects_zero(self):
        with pytest.raises(TopologyError):
            linear_topology(0)

    def test_presets_shape(self):
        assert (ibmq5_topology().mx, ibmq5_topology().my) == (5, 1)
        assert (ibmq20_topology().mx, ibmq20_topology().my) == (5, 4)

    def test_device_calibration(self):
        cal = device_calibration("ibmq20", day=2)
        assert cal.topology.n_qubits == 20
        assert cal.label == "day2"

    def test_compile_on_linear_device(self):
        """All variants work on the ion-trap-style chain."""
        from repro.compiler import CompilerOptions, compile_circuit
        from repro.hardware import CalibrationGenerator
        from repro.programs import build_benchmark

        cal = CalibrationGenerator(linear_topology(8), seed=4).snapshot(0)
        program = compile_circuit(build_benchmark("Toffoli"), cal,
                                  CompilerOptions.r_smt_star())
        assert len(program.placement) == 3


class TestCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_benchmarks_listing(self):
        code, text = self.run_cli("benchmarks")
        assert code == 0
        assert "BV4" in text and "Adder" in text

    def test_calibration_summary(self):
        code, text = self.run_cli("calibration", "--device", "ibmq16",
                                  "--day", "1")
        assert code == 0
        assert "mean CNOT error" in text

    def test_calibration_json_output(self, tmp_path):
        out_file = tmp_path / "cal.json"
        code, _ = self.run_cli("calibration", "--output", str(out_file))
        assert code == 0
        data = json.loads(out_file.read_text())
        assert len(data["qubits"]) == 16

    def test_compile_benchmark_to_stdout(self):
        code, text = self.run_cli("compile", "--benchmark", "BV4",
                                  "--variant", "greedye*")
        assert code == 0
        assert text.startswith("OPENQASM 2.0;")

    def test_compile_with_verification(self, tmp_path):
        out_file = tmp_path / "bv4.qasm"
        code, _ = self.run_cli("compile", "--benchmark", "BV4",
                               "--variant", "r-smt*", "--verify",
                               "--output", str(out_file))
        assert code == 0
        assert out_file.read_text().startswith("OPENQASM 2.0;")

    def test_compile_scaffir_file(self, tmp_path):
        src = tmp_path / "prog.scaffir"
        src.write_text("qubits 2\ncbits 2\nh q0\ncx q0, q1\n"
                       "measure q0 -> c0\nmeasure q1 -> c1\n")
        code, text = self.run_cli("compile", "--scaffir", str(src),
                                  "--variant", "greedyv*")
        assert code == 0
        assert "cx" in text

    def test_compile_qasm_file(self, tmp_path):
        src = tmp_path / "prog.qasm"
        src.write_text("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n"
                       "h q[0];\ncx q[0], q[1];\n"
                       "measure q[0] -> c[0];\n")
        code, text = self.run_cli("compile", "--qasm", str(src))
        assert code == 0
        assert "measure" in text

    def test_run_benchmark(self):
        code, text = self.run_cli("run", "--benchmark", "BV4",
                                  "--variant", "greedye*",
                                  "--trials", "128")
        assert code == 0
        assert "success rate:" in text

    def test_run_with_peephole(self):
        code, text = self.run_cli("run", "--benchmark", "Toffoli",
                                  "--variant", "qiskit", "--peephole",
                                  "--trials", "128")
        assert code == 0
        assert "success rate:" in text

    def test_experiment_table2(self):
        code, text = self.run_cli("experiment", "table2")
        assert code == 0
        assert "BV4" in text

    def test_experiment_fig1(self):
        code, text = self.run_cli("experiment", "fig1", "--days", "3")
        assert code == 0
        assert "T2" in text

    def test_experiment_fig8(self):
        code, text = self.run_cli("experiment", "fig8")
        assert code == 0
        assert "est.reliability" in text

    def test_unknown_device_is_an_error(self):
        code, _ = self.run_cli("calibration", "--device", "toaster")
        assert code == 1
