"""Chaos suite for the fault-tolerant sweep runtime.

Every recovery path of the supervised pool, the per-cell isolation
layer, and the checkpoint journal is driven by a deterministic
:class:`~repro.runtime.faults.FaultPlan` and checked against a
fault-free reference run: surviving cells must be bit-identical, and
exactly the injected failures must appear in the failure report. The
CI chaos job runs this file under ``REPRO_FAULTS=1`` with a hard
timeout so a supervision bug hangs a job, not a laptop.
"""

import multiprocessing
import signal
import warnings
from dataclasses import replace

import pytest

from repro.compiler import CompilerOptions
from repro.exceptions import CellExecutionError, FaultInjected, ReproError
from repro.hardware import default_ibmq16_calibration
from repro.programs import get_benchmark
from repro.runtime import (
    DiskStore,
    FaultPlan,
    PersistentCompileCache,
    SweepCell,
    cell_fingerprint,
    run_sweep,
)
from repro.runtime.diskcache import DEGRADE_AFTER

TRIALS = 64

#: Fast-compiling options: chaos tests exercise the runtime, not the
#: SMT solver.
OPTIONS = CompilerOptions.qiskit()


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(autouse=True)
def armed(monkeypatch):
    """Arm the fault gate for every test in this file."""
    monkeypatch.setenv("REPRO_FAULTS", "1")


def make_cells(cal, benchmarks=("BV4", "Toffoli", "HS2"), seeds=(0, 1)):
    """A grid with one mapping-prefix group per benchmark, so
    ``workers=len(benchmarks)`` yields one batch per benchmark."""
    cells = []
    for name in benchmarks:
        spec = get_benchmark(name)
        circuit = spec.build()
        for seed in seeds:
            cells.append(SweepCell(
                circuit=circuit, calibration=cal, options=OPTIONS,
                expected=spec.expected_output, trials=TRIALS, seed=seed,
                key=(name, seed)))
    return cells


@pytest.fixture(scope="module")
def cells(cal):
    return make_cells(cal)


@pytest.fixture(scope="module")
def baseline(cells):
    """The fault-free reference every chaos run is compared against."""
    return run_sweep(cells)


def assert_identical(reference, sweep, except_indexes=()):
    """Surviving cells must be bit-identical to the reference run."""
    for index, (a, b) in enumerate(zip(reference, sweep)):
        if index in except_indexes:
            continue
        assert b.ok, f"cell {index} unexpectedly failed: {b.failure}"
        assert a.key == b.key
        assert a.execution.counts == b.execution.counts
        assert a.compiled.placement == b.compiled.placement


class TestGate:
    def test_disarmed_plan_is_inert(self, cells, baseline, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS")
        sweep = run_sweep(cells, faults=FaultPlan(raise_in=(0, 1, 2)))
        assert sweep.ok
        assert_identical(baseline, sweep)

    def test_from_env_requires_gate_and_spec(self, monkeypatch):
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "raise:1,kill:2x*,delay:3=0.5,corrupt:4")
        plan = FaultPlan.from_env()
        assert plan.raise_in == (1,)
        assert plan.kill_on == {2: None}
        assert plan.delay == {3: 0.5}
        assert plan.corrupt_journal == (4,)
        monkeypatch.setenv("REPRO_FAULT_SPEC",
                           "conn-drop:0,conn-trunc:1,conn-delay:2=0.25,"
                           "kill-server:3")
        plan = FaultPlan.from_env()
        assert plan.conn_drop == (0,)
        assert plan.conn_trunc == (1,)
        assert plan.conn_delay == {2: 0.25}
        assert plan.kill_server_on == (3,)
        monkeypatch.setenv("REPRO_FAULTS", "0")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "1")
        monkeypatch.setenv("REPRO_FAULT_SPEC", "explode:7")
        with pytest.raises(ReproError):
            FaultPlan.from_env()

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(11, 100, raise_rate=0.2, kill_rate=0.2)
        b = FaultPlan.random(11, 100, raise_rate=0.2, kill_rate=0.2)
        assert a == b
        assert a != FaultPlan.random(12, 100, raise_rate=0.2,
                                     kill_rate=0.2)


class TestPerCellIsolation:
    def test_raise_fault_is_captured_not_fatal(self, cells, baseline):
        sweep = run_sweep(cells, faults=FaultPlan(raise_in=(2,)))
        assert [f.index for f in sweep.failures] == [2]
        failure = sweep.failures[0]
        assert failure.error_type == "FaultInjected"
        assert failure.stage == "cell" and failure.attempts == 1
        assert "FaultInjected" in failure.traceback
        assert_identical(baseline, sweep, except_indexes={2})
        assert "1 failed" in sweep.summary()
        assert "Toffoli" in sweep.failure_report()

    def test_failed_cell_channels_raise_informatively(self, cells):
        sweep = run_sweep(cells, faults=FaultPlan(raise_in=(0,)))
        result = sweep.results[0]
        assert not result.ok and result.compiled is None
        with pytest.raises(ReproError, match="failed"):
            result.success_rate

    def test_strict_serial_raises_original_exception(self, cells):
        with pytest.raises(FaultInjected):
            run_sweep(cells, faults=FaultPlan(raise_in=(1,)), strict=True)

    def test_strict_parallel_raises_cell_execution_error(self, cells):
        with pytest.raises(CellExecutionError, match="FaultInjected"):
            run_sweep(cells, workers=3, strict=True,
                      faults=FaultPlan(raise_in=(1,)))

    def test_kill_fault_in_serial_path_is_loud(self, cells):
        sweep = run_sweep(cells, faults=FaultPlan(kill_on={1: None}))
        assert [f.index for f in sweep.failures] == [1]
        assert sweep.failures[0].error_type == "FaultInjected"


class TestSupervisedPool:
    def test_transient_worker_kill_loses_nothing(self, cells, baseline):
        """Acceptance (a): a killed worker loses no other batch's cells
        — and after the retry, not even its own."""
        sweep = run_sweep(cells, workers=3, max_retries=2,
                          faults=FaultPlan(kill_on={3: 1}))
        assert sweep.ok
        assert_identical(baseline, sweep)

    def test_poison_cell_quarantined_others_survive(self, cells, baseline):
        """Acceptance (b): a cell that always kills its worker is
        bisected out and quarantined; every other cell's result is
        intact — including its own batch siblings."""
        sweep = run_sweep(cells, workers=3, max_retries=1,
                          faults=FaultPlan(kill_on={3: None}))
        assert [f.index for f in sweep.failures] == [3]
        failure = sweep.failures[0]
        assert failure.error_type == "WorkerDied"
        assert failure.stage == "worker"
        assert failure.attempts == 2  # max_retries + 1
        assert_identical(baseline, sweep, except_indexes={3})

    def test_kill_and_poison_together(self, cells, baseline):
        """The acceptance grid: one worker killed transiently AND one
        poison cell, in one sweep — exactly the injected failures are
        reported, everything else is bit-identical."""
        sweep = run_sweep(cells, workers=3, max_retries=1,
                          faults=FaultPlan(kill_on={1: 1, 4: None}))
        assert [f.index for f in sweep.failures] == [4]
        assert_identical(baseline, sweep, except_indexes={4})

    def test_watchdog_kills_and_resubmits_stuck_worker(
            self, cells, baseline):
        sweep = run_sweep(cells, workers=3, max_retries=2,
                          batch_timeout=2.0,
                          faults=FaultPlan(delay={3: 60.0}))
        assert sweep.ok
        assert_identical(baseline, sweep)

    def test_watchdog_quarantines_permanently_stuck_cell(self, cal, baseline):
        cells = make_cells(cal)
        sweep = run_sweep(cells, workers=3, max_retries=0,
                          batch_timeout=1.0,
                          faults=FaultPlan(delay={3: 60.0},
                                           delay_times=10))
        assert [f.index for f in sweep.failures] == [3]
        assert sweep.failures[0].error_type == "WorkerTimeout"
        assert sweep.failures[0].stage == "timeout"
        assert_identical(baseline, sweep, except_indexes={3})


class TestCheckpointResume:
    def test_resume_after_interrupt_is_bit_identical(
            self, cells, baseline, tmp_path):
        """Acceptance (c): resume re-executes only incomplete cells
        (pinned via journal hit counters) and matches an uninterrupted
        run bit-for-bit."""
        cache_dir = tmp_path / "store"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(cells, cache_dir=cache_dir,
                      faults=FaultPlan(interrupt_in=(3,)))
        resumed = run_sweep(cells, cache_dir=cache_dir, resume=True)
        assert resumed.ok
        assert resumed.resumed == 3
        journal = resumed.disk_stats["cell"]
        assert journal.hits == 3      # cells 0..2 served from journal
        assert journal.misses == 3    # cells 3..5 re-executed
        assert_identical(baseline, resumed)
        assert "3 resumed" in resumed.summary()

    def test_resume_of_complete_sweep_executes_nothing(
            self, cells, baseline, tmp_path):
        cache_dir = tmp_path / "store"
        run_sweep(cells, cache_dir=cache_dir)
        again = run_sweep(cells, cache_dir=cache_dir, resume=True)
        assert again.resumed == len(cells)
        assert again.disk_stats["cell"].hits == len(cells)
        assert again.compile_stats.lookups == 0  # nothing executed
        assert_identical(baseline, again)
        assert all(r.resumed for r in again)

    def test_resume_after_parallel_worker_loss(self, cells, baseline,
                                               tmp_path):
        """Workers journal cells as they complete, so even a sweep that
        ends with a quarantined cell leaves a useful checkpoint; the
        resumed (fault-free) sweep re-executes only what's missing."""
        cache_dir = tmp_path / "store"
        first = run_sweep(cells, workers=3, max_retries=0,
                          cache_dir=cache_dir,
                          faults=FaultPlan(kill_on={3: None}))
        assert [f.index for f in first.failures] == [3]
        resumed = run_sweep(cells, cache_dir=cache_dir, resume=True)
        assert resumed.ok
        assert resumed.resumed == 5  # everything but the quarantined cell
        assert_identical(baseline, resumed)

    def test_resume_reattempts_quarantined_cells(self, cells, baseline,
                                                 tmp_path):
        """Failed cells are deliberately not journaled, so a resumed
        sweep re-attempts exactly them: survivors are served from the
        journal bit-identically while the poison cell is re-executed
        (and, with the fault still armed, re-quarantined)."""
        cache_dir = tmp_path / "store"
        first = run_sweep(cells, workers=3, max_retries=0,
                          cache_dir=cache_dir,
                          faults=FaultPlan(kill_on={3: None}))
        assert [f.index for f in first.failures] == [3]
        # Resume with the poison still active: the failed cell is
        # genuinely re-attempted (a journal miss, then a fresh
        # quarantine), not served from a stale failure record.
        again = run_sweep(cells, workers=3, max_retries=0,
                          cache_dir=cache_dir, resume=True,
                          faults=FaultPlan(kill_on={3: None}))
        assert again.resumed == 5
        assert again.disk_stats["cell"].hits == 5
        assert [f.index for f in again.failures] == [3]
        # Only one cell was left to run, so it went down the serial
        # path, where a kill fault surfaces as a loud FaultInjected.
        assert again.failures[0].error_type == "FaultInjected"
        assert_identical(baseline, again, except_indexes={3})
        # Fault lifted: the third run completes just the poison cell.
        healed = run_sweep(cells, cache_dir=cache_dir, resume=True)
        assert healed.ok and healed.resumed == 5
        assert_identical(baseline, healed)

    def test_corrupt_journal_entry_degrades_to_reexecution(
            self, cells, baseline, tmp_path):
        """Acceptance (d): a corrupt journal entry fails the store's
        integrity check, loads as a miss, and the cell re-executes —
        no crash, no trusted garbage."""
        cache_dir = tmp_path / "store"
        run_sweep(cells, cache_dir=cache_dir,
                  faults=FaultPlan(corrupt_journal=(1,)))
        resumed = run_sweep(cells, cache_dir=cache_dir, resume=True)
        assert resumed.ok
        assert resumed.resumed == len(cells) - 1
        assert resumed.disk_stats["cell"].misses >= 1
        assert_identical(baseline, resumed)

    def test_resume_without_store_is_an_error(self, cells):
        with pytest.raises(ReproError, match="cache_dir"):
            run_sweep(cells, resume=True)

    def test_fingerprint_covers_result_determinants(self, cal):
        spec = get_benchmark("BV4")
        base = SweepCell(circuit=spec.build(), calibration=cal,
                         options=OPTIONS, expected=spec.expected_output,
                         trials=TRIALS, seed=0, key="a")
        fingerprints = {cell_fingerprint(base)}
        for tweak in (dict(seed=1), dict(trials=32), dict(simulate=False),
                      dict(engine="trial"), dict(expected=None)):
            cell = SweepCell(circuit=spec.build(), calibration=cal,
                             options=OPTIONS,
                             expected=tweak.get("expected",
                                                spec.expected_output),
                             trials=tweak.get("trials", TRIALS),
                             seed=tweak.get("seed", 0),
                             simulate=tweak.get("simulate", True),
                             engine=tweak.get("engine"), key="b")
            fingerprints.add(cell_fingerprint(cell))
        assert len(fingerprints) == 6
        # ...while the free-form key deliberately doesn't matter.
        renamed = SweepCell(circuit=spec.build(), calibration=cal,
                            options=OPTIONS,
                            expected=spec.expected_output,
                            trials=TRIALS, seed=0, key="renamed")
        assert cell_fingerprint(renamed) == cell_fingerprint(base)


class TestParallelInterrupt:
    @pytest.mark.skipif(not hasattr(signal, "SIGALRM"),
                        reason="needs SIGALRM")
    def test_interrupt_tears_down_pool_and_checkpoints(
            self, cal, baseline, tmp_path):
        """Ctrl-C mid-sweep: the supervisor kills every worker before
        re-raising (no zombie children), and cells completed before the
        interrupt were journaled, so resume finishes the job."""
        cells = make_cells(cal)
        cache_dir = tmp_path / "store"

        def interrupt(signum, frame):
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGALRM, interrupt)
        signal.setitimer(signal.ITIMER_REAL, 4.0)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_sweep(cells, workers=3, cache_dir=cache_dir,
                          faults=FaultPlan(delay={3: 120.0},
                                           delay_times=10))
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        assert multiprocessing.active_children() == []
        resumed = run_sweep(cells, cache_dir=cache_dir, resume=True)
        assert resumed.ok
        # Everything but the stalled cell finished and checkpointed
        # before the alarm (its batch sibling included); resume
        # re-executes only the stalled cell.
        assert resumed.resumed == 5
        assert_identical(baseline, resumed)


class TestDiskDegradation:
    def test_store_flips_to_memory_only_with_one_warning(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        store = DiskStore(blocker)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            for i in range(DEGRADE_AFTER):
                store.store("compile", f"key-{i}", i)
        assert store.degraded
        stats = store.stats_for("compile")
        assert stats.write_errors == DEGRADE_AFTER
        # Further writes are silent no-ops — no retry, no new warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store.store("compile", "key-after", 1)
        assert stats.write_errors == DEGRADE_AFTER
        assert "write errors" in stats.describe()
        # The degraded flag is store state, stamped onto snapshots.
        stamped = replace(stats, degraded=store.degraded)
        assert "DEGRADED (memory-only)" in stamped.describe()

    def test_successful_write_resets_the_failure_streak(self, tmp_path):
        store = DiskStore(tmp_path / "store")
        store._note_write_failure("compile")
        store._note_write_failure("compile")
        store.store("compile", "key", "value")  # succeeds, streak resets
        store._note_write_failure("compile")
        assert not store.degraded

    def test_redeem_recovers_degraded_store(self, tmp_path):
        """``redeem`` lifts a memory-only degradation once the disk
        works again — and only then: while the root is still blocked
        the store stays degraded, silently."""
        blocker = tmp_path / "store"
        blocker.write_text("occupied")
        store = DiskStore(blocker)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            for i in range(DEGRADE_AFTER):
                store.store("compile", f"key-{i}", i)
        assert store.degraded
        assert not store.redeem()  # root is still a file
        assert store.degraded and store.redemptions == 0
        blocker.unlink()  # the outage clears
        assert store.redeem()
        assert not store.degraded and store.redemptions == 1
        # The recovered store persists again, with a fresh streak.
        store.store("compile", "after", "value")
        assert store.load("compile", "after") == "value"
        assert store.stats_for("compile").write_errors == DEGRADE_AFTER

    def test_redeem_on_healthy_store_is_a_noop(self, tmp_path):
        store = DiskStore(tmp_path / "store")
        assert store.redeem()
        assert store.redemptions == 0

    def test_redemption_surfaces_in_store_stats(self, tmp_path):
        """The recovery is stamped (like ``degraded``) onto every
        stats snapshot the persistent cache hands out."""
        blocker = tmp_path / "store"
        blocker.write_text("occupied")
        cache = PersistentCompileCache(blocker)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            for i in range(DEGRADE_AFTER):
                cache._store.store("compile", f"key-{i}", i)
        assert not cache.redeem()
        blocker.unlink()
        assert cache.redeem()
        stats = cache.disk_stats()["compile"]
        assert stats.redeemed == 1 and not stats.degraded
        assert "redeemed x1" in stats.describe()
        # Snapshot diffs carry the state through undiffed — a span
        # report after a recovery still shows it.
        assert stats.minus(replace(stats, hits=0)).redeemed == 1

    def test_degraded_store_surfaces_in_sweep_summary(
            self, cal, baseline, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("occupied")
        cache = PersistentCompileCache(blocker)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            sweep = run_sweep(make_cells(cal, benchmarks=("BV4",),
                                         seeds=(0,)),
                              compile_cache=cache)
        assert sweep.ok
        assert "DEGRADED" in sweep.summary()
        assert_identical(baseline, sweep)  # zip stops at the one cell
