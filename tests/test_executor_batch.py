"""Tests for the batched execution engine (trace + vectorized sampler).

The batched engine must be distribution-identical (in law) to the
legacy per-trial engine: fixed-seed runs of both are compared under a
TVD bound, batched runs must be deterministic per seed, and the
error-plan dedup cache must reproduce uncached trajectory simulation
exactly.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import SimulationError
from repro.hardware import default_ibmq16_calibration
from repro.programs import build_benchmark, expected_output
from repro.simulator import (
    CompactProgram,
    NoiseModel,
    ProgramTrace,
    empirical_distribution,
    execute,
    total_variation_distance,
)
from repro.simulator.batch import batch_plan_probabilities, plan_events
from repro.simulator.executor import _run_state

TRIALS = 4096
BENCHMARKS = ["BV4", "Toffoli", "HS2"]


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def programs(cal):
    return {name: compile_circuit(build_benchmark(name), cal,
                                  CompilerOptions.r_smt_star())
            for name in BENCHMARKS}


class TestEngineAgreement:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_tvd_bound(self, cal, programs, name):
        """Batched and legacy engines agree within TVD <= 0.05."""
        kwargs = {"trials": TRIALS, "seed": 11,
                  "expected": expected_output(name)}
        legacy = execute(programs[name], cal, engine="trial", **kwargs)
        batched = execute(programs[name], cal, engine="batched", **kwargs)
        tvd = total_variation_distance(
            empirical_distribution(legacy.counts),
            empirical_distribution(batched.counts))
        assert tvd <= 0.05
        assert abs(legacy.success_rate - batched.success_rate) <= 0.05

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_ideal_distribution_matches_legacy(self, cal, programs, name):
        a = execute(programs[name], cal, trials=8, seed=0, engine="trial")
        b = execute(programs[name], cal, trials=8, seed=0, engine="batched")
        assert set(a.ideal_distribution) == set(b.ideal_distribution)
        for outcome, p in a.ideal_distribution.items():
            assert b.ideal_distribution[outcome] == pytest.approx(p)

    def test_unknown_engine_rejected(self, cal, programs):
        with pytest.raises(SimulationError):
            execute(programs["BV4"], cal, trials=8, engine="bogus")

    def test_custom_sampling_hooks_fall_back_to_trial(self, cal, programs):
        """A NoiseModel overriding the per-trial sampling hooks must be
        honored (the batched lowering only reads the accessors)."""

        class SilentGates(NoiseModel):
            def sample_gate_error(self, gate, rng,
                                  concurrent_neighbors=0):
                return []

        noise = SilentGates(cal, decoherence=False, readout_errors=False)
        with pytest.warns(RuntimeWarning, match="engine='trial'"):
            result = execute(programs["BV4"], cal, trials=128, seed=0,
                             expected=expected_output("BV4"),
                             noise_model=noise, engine="batched")
        # gate_error_probability still reports nonzero rates, but the
        # overridden sampler never fires an error.
        assert result.success_rate == pytest.approx(1.0)


class TestDeterminism:
    def test_batched_reproducible(self, cal, programs):
        kwargs = {"trials": 512, "seed": 23,
                  "expected": expected_output("BV4")}
        a = execute(programs["BV4"], cal, engine="batched", **kwargs)
        b = execute(programs["BV4"], cal, engine="batched", **kwargs)
        assert a.counts == b.counts

    def test_seeds_differ(self, cal, programs):
        a = execute(programs["BV4"], cal, trials=512, seed=1,
                    engine="batched")
        b = execute(programs["BV4"], cal, trials=512, seed=2,
                    engine="batched")
        assert a.counts != b.counts

    def test_counts_sum_to_trials(self, cal, programs):
        result = execute(programs["Toffoli"], cal, trials=777, seed=5,
                         engine="batched")
        assert sum(result.counts.values()) == 777


class TestPlanDedup:
    """The dedup cache must equal uncached per-plan simulation."""

    @pytest.fixture(scope="class")
    def trace(self, cal, programs):
        compiled = programs["BV4"]
        compact = CompactProgram(compiled.physical.circuit,
                                 compiled.physical.times,
                                 topology=cal.topology)
        return ProgramTrace(compact, NoiseModel(cal))

    def test_batched_plans_match_single_plan_simulation(self, trace):
        rng = np.random.default_rng(3)
        plans = []
        for _ in range(6):
            k = int(rng.integers(1, 4))
            sites = np.sort(rng.choice(trace.n_sites, size=k, replace=False))
            choices = np.array([
                rng.integers(len(trace.site_events[s])) for s in sites])
            plans.append(plan_events(trace, sites, choices))
        batched = batch_plan_probabilities(trace, plans)
        for row, plan in enumerate(plans):
            single = trace.plan_probabilities(plan)
            assert np.allclose(batched[row], single)

    def test_plan_simulation_matches_legacy_run_state(self, trace):
        """Trace-level trajectory sim equals the legacy _run_state path."""
        rng = np.random.default_rng(4)
        sites = np.sort(rng.choice(trace.n_sites, size=3, replace=False))
        choices = np.array([
            rng.integers(len(trace.site_events[s])) for s in sites])
        plan = plan_events(trace, sites, choices)
        legacy_plan = [list(plan.get(i, []))
                       for i in range(len(trace.compact.gates))]
        state = _run_state(trace.compact, legacy_plan)
        probs = state.probabilities()
        legacy_pattern = np.bincount(
            trace.basis_codes, weights=probs,
            minlength=1 << trace.n_measures)
        assert np.allclose(trace.plan_probabilities(plan), legacy_pattern)

    def test_duplicate_plans_share_one_distribution(self, trace):
        sites = np.array([0])
        choices = np.array([0])
        plan = plan_events(trace, sites, choices)
        batched = batch_plan_probabilities(trace, [plan, plan, plan])
        assert np.allclose(batched[0], batched[1])
        assert np.allclose(batched[1], batched[2])


class TestNoiseMechanisms:
    def test_readout_asymmetry_honored(self, cal, programs):
        """Batched readout flips respect the per-bit probabilities."""
        from repro.hardware import (Calibration, QubitCalibration,
                                    ibmq16_topology, uniform_calibration)
        topo = ibmq16_topology()
        base = uniform_calibration(topo, cnot_error=0.0,
                                   single_qubit_error=0.0)
        skewed = {q: QubitCalibration(t1_us=90, t2_us=70, readout_error=0.1,
                                      single_qubit_error=0.0,
                                      readout_asymmetry=0.9)
                  for q in topo.iter_qubits()}
        asym = Calibration(topology=topo, qubits=skewed, edges=base.edges)
        from repro.ir.circuit import Circuit
        circuit = Circuit(2, 2).x(0).x(1).measure_all()
        program = compile_circuit(circuit, asym, CompilerOptions.greedy_e())
        noise = NoiseModel(asym, gate_errors=False, decoherence=False)
        result = execute(program, asym, trials=4000, seed=1, expected="11",
                         noise_model=noise, engine="batched")
        assert result.success_rate == pytest.approx(0.81 ** 2, abs=0.04)

    def test_aliased_cbits_keep_all_trials(self, cal):
        """Two measures writing the same cbit must not drop counts."""
        from repro.ir.circuit import Circuit
        circuit = Circuit(2, 1).h(0).x(1).measure(0, 0).measure(1, 0)
        program = compile_circuit(circuit, cal, CompilerOptions.greedy_e())
        legacy = execute(program, cal, trials=1000, seed=0, engine="trial")
        batched = execute(program, cal, trials=1000, seed=0,
                          engine="batched")
        assert sum(batched.counts.values()) == 1000
        assert sum(batched.ideal_distribution.values()) == \
            pytest.approx(1.0)
        assert batched.ideal_distribution == legacy.ideal_distribution
        tvd = total_variation_distance(
            empirical_distribution(legacy.counts),
            empirical_distribution(batched.counts))
        assert tvd <= 0.06

    def test_ideal_noise_gives_perfect_success(self, cal, programs):
        from repro.simulator import ideal_noise_model
        result = execute(programs["BV4"], cal, trials=256, seed=0,
                         expected=expected_output("BV4"),
                         noise_model=ideal_noise_model(cal),
                         engine="batched")
        assert result.success_rate == pytest.approx(1.0)
