"""Tests for OpenQASM and ScaffIR emit/parse round-trips."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QasmError, ScaffIRError
from repro.ir.circuit import Circuit
from repro.ir.qasm import circuit_to_qasm, qasm_to_circuit
from repro.ir.scaffir import emit_scaffir, parse_scaffir
from repro.programs import build_benchmark, random_circuit


class TestQasmEmission:
    def test_header_and_registers(self):
        text = circuit_to_qasm(Circuit(3, 2))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "creg c[2];" in text

    def test_gate_lines(self):
        c = Circuit(2).h(0).cx(0, 1).measure(1, cbit=0)
        text = circuit_to_qasm(c)
        assert "h q[0];" in text
        assert "cx q[0], q[1];" in text
        assert "measure q[1] -> c[0];" in text

    def test_parametric_gate_roundtrips_exactly(self):
        c = Circuit(1, 1).rz(math.pi / 7, 0)
        back = qasm_to_circuit(circuit_to_qasm(c))
        assert back[0].param == pytest.approx(math.pi / 7)


class TestQasmParsing:
    def test_parse_simple_program(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> c[0];
        """
        c = qasm_to_circuit(text)
        assert c.n_qubits == 2
        assert [g.name for g in c] == ["h", "cx", "measure"]

    def test_comments_stripped(self):
        text = "qreg q[1];\nh q[0]; // comment\n"
        assert len(qasm_to_circuit(text)) == 1

    def test_pi_expression_parsed(self):
        c = qasm_to_circuit("qreg q[1]; rz(pi/2) q[0];")
        assert c[0].param == pytest.approx(math.pi / 2)

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("h q[0];")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("qreg q[1]; h r[0];")

    def test_gate_before_qreg_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit('OPENQASM 2.0; h q[0]; qreg q[1];')

    def test_evil_parameter_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit('qreg q[1]; rz(__import__("os")) q[0];')

    def test_multiple_qregs_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("qreg a[1]; qreg b[1];")

    @given(seed=st.integers(0, 5000), n_gates=st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_circuits(self, seed, n_gates):
        original = random_circuit(4, n_gates, seed=seed)
        back = qasm_to_circuit(circuit_to_qasm(original))
        assert back.n_qubits == original.n_qubits
        assert [g.name for g in back] == [g.name for g in original]
        assert [g.qubits for g in back] == [g.qubits for g in original]

    def test_roundtrip_benchmarks(self):
        for name in ("BV4", "QFT", "Adder"):
            original = build_benchmark(name)
            back = qasm_to_circuit(circuit_to_qasm(original))
            assert len(back) == len(original)


class TestScaffIR:
    SAMPLE = """
    // Bernstein-Vazirani on 2+1 qubits
    qubits 3
    cbits 2
    x q2
    h q0
    h q1
    h q2
    cx q0, q2
    h q0
    measure q0 -> c0
    measure q1 -> c1
    """

    def test_parse_sample(self):
        c = parse_scaffir(self.SAMPLE)
        assert c.n_qubits == 3
        assert c.n_cbits == 2
        assert c.cnot_count() == 1
        assert len(c.measurements) == 2

    def test_missing_qubits_decl_rejected(self):
        with pytest.raises(ScaffIRError):
            parse_scaffir("h q0")

    def test_duplicate_qubits_decl_rejected(self):
        with pytest.raises(ScaffIRError):
            parse_scaffir("qubits 2\nqubits 3")

    def test_bad_qubit_token_rejected(self):
        with pytest.raises(ScaffIRError):
            parse_scaffir("qubits 2\nh qubit0")

    def test_out_of_range_reference_rejected(self):
        with pytest.raises(ScaffIRError):
            parse_scaffir("qubits 2\nh q5")

    def test_parametric_gate(self):
        c = parse_scaffir("qubits 1\nrz(pi/4) q0")
        assert c[0].param == pytest.approx(math.pi / 4)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random(self, seed):
        original = random_circuit(3, 20, seed=seed)
        back = parse_scaffir(emit_scaffir(original))
        assert [g for g in back] == [g for g in original]

    def test_emit_contains_declarations(self):
        text = emit_scaffir(Circuit(2, 2).h(0).measure(0))
        assert "qubits 2" in text
        assert "measure q0 -> c0" in text
