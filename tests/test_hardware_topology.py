"""Unit tests for repro.hardware.topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.hardware.topology import (
    GridTopology,
    edge_key,
    ibmq16_topology,
    square_topology,
)


class TestGridBasics:
    def test_ibmq16_dimensions(self):
        topo = ibmq16_topology()
        assert topo.n_qubits == 16
        assert (topo.mx, topo.my) == (8, 2)

    def test_coords_roundtrip(self):
        topo = GridTopology(5, 3)
        for q in topo.iter_qubits():
            x, y = topo.coords(q)
            assert topo.qubit_at(x, y) == q

    def test_out_of_range_rejected(self):
        topo = GridTopology(2, 2)
        with pytest.raises(TopologyError):
            topo.coords(4)
        with pytest.raises(TopologyError):
            topo.qubit_at(2, 0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            GridTopology(0, 3)

    def test_distance_is_manhattan(self):
        topo = ibmq16_topology()
        assert topo.distance(0, 1) == 1
        assert topo.distance(0, 8) == 1   # vertical neighbor
        assert topo.distance(0, 15) == 8  # corner to corner

    def test_neighbors_interior_and_corner(self):
        topo = ibmq16_topology()
        assert topo.neighbors(0) == [1, 8]
        assert topo.neighbors(1) == [0, 2, 9]

    def test_edge_count_2x8(self):
        # 2 rows x 7 horizontal + 8 vertical rungs = 22 edges.
        assert len(ibmq16_topology().edges()) == 22

    def test_edges_canonical_and_adjacent(self):
        topo = GridTopology(4, 4)
        for a, b in topo.edges():
            assert a < b
            assert topo.is_adjacent(a, b)

    def test_edge_key(self):
        assert edge_key(5, 2) == (2, 5)
        with pytest.raises(TopologyError):
            edge_key(3, 3)


class TestOneBendPaths:
    def test_straight_line_single_path(self):
        topo = ibmq16_topology()
        j0, j1 = topo.one_bend_junctions(0, 3)
        assert j0 == 3 and j1 == 0  # degenerate corners
        assert topo.one_bend_path(0, 3, 0) == [0, 1, 2, 3]

    def test_l_paths_differ(self):
        topo = ibmq16_topology()
        p0 = topo.one_bend_path(0, 10, 0)
        p1 = topo.one_bend_path(0, 10, 1)
        assert p0 == [0, 1, 2, 10]
        assert p1 == [0, 8, 9, 10]

    def test_path_endpoints(self):
        topo = GridTopology(4, 4)
        for junction in (0, 1):
            path = topo.one_bend_path(0, 15, junction)
            assert path[0] == 0 and path[-1] == 15

    def test_path_steps_are_adjacent(self):
        topo = GridTopology(5, 4)
        path = topo.one_bend_path(0, 18, 1)
        for a, b in zip(path, path[1:]):
            assert topo.is_adjacent(a, b)

    def test_invalid_junction_rejected(self):
        with pytest.raises(TopologyError):
            ibmq16_topology().one_bend_path(0, 5, 2)

    def test_bounding_rectangle(self):
        topo = ibmq16_topology()
        rect = topo.bounding_rectangle(0, 10)
        assert sorted(rect) == [0, 1, 2, 8, 9, 10]

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=60, deadline=None)
    def test_one_bend_length_equals_distance(self, a, b):
        topo = ibmq16_topology()
        if a == b:
            return
        for junction in (0, 1):
            path = topo.one_bend_path(a, b, junction)
            assert len(path) == topo.distance(a, b) + 1
            assert len(set(path)) == len(path)  # simple path

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_paths_stay_in_bounding_rectangle(self, a, b):
        topo = ibmq16_topology()
        if a == b:
            return
        rect = set(topo.bounding_rectangle(a, b))
        for junction in (0, 1):
            assert set(topo.one_bend_path(a, b, junction)) <= rect


class TestSquareTopology:
    @pytest.mark.parametrize("n,expected", [(1, (1, 1)), (4, (2, 2)),
                                            (16, (4, 4)), (17, (5, 4)),
                                            (32, (6, 6)), (128, (12, 11))])
    def test_capacity(self, n, expected):
        topo = square_topology(n)
        assert topo.n_qubits >= n
        assert (topo.mx, topo.my) == expected

    def test_rejects_zero(self):
        with pytest.raises(TopologyError):
            square_topology(0)
