"""Error-mitigation subsystem tests.

Covers the three estimator families (ZNE with both amplifiers, readout
inversion, composition), their integration with the sweep runtime's
mitigation axis and caches, the persistent on-disk compile/stage cache,
and the acceptance bar: ``repro mitigate --strategy zne`` must improve
mean success over the unmitigated baseline on >= 3 Table-2 benchmarks
under the default noise model.
"""

import io
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import MitigationError, ReproError
from repro.hardware import default_ibmq16_calibration
from repro.mitigation import (
    ComposedStrategy,
    FoldingPass,
    MitigationContext,
    ReadoutMitigator,
    ReadoutStrategy,
    ScaledNoiseModel,
    ZneStrategy,
    achieved_scale,
    confusion_matrix,
    extrapolate,
    fold_circuit,
    folded_pipeline,
    richardson_extrapolate,
    strategy_from_spec,
)
from repro.programs import get_benchmark
from repro.programs.random_circuits import random_circuit
from repro.runtime import PersistentCompileCache, SweepCell, TraceCache, \
    run_sweep
from repro.simulator import NoiseModel, StateVector, execute

TRIALS = 256


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def compiled_bv4(cal):
    return compile_circuit(get_benchmark("BV4").build(), cal,
                           CompilerOptions.r_smt_star())


def make_context(cal, compiled, trials=TRIALS, seed=3, **kwargs):
    baseline = execute(compiled, cal, trials=trials, seed=seed,
                       expected=get_benchmark("BV4").expected_output)
    return MitigationContext(compiled=compiled, calibration=cal,
                             baseline=baseline, trials=trials, seed=seed,
                             **kwargs)


# ----------------------------------------------------------------------
# Readout confusion inversion
# ----------------------------------------------------------------------
class TestConfusionInversion:
    @given(p0=st.floats(0.0, 0.4), p1=st.floats(0.0, 0.4))
    @settings(max_examples=50, deadline=None)
    def test_matrix_is_column_stochastic(self, p0, p1):
        matrix = confusion_matrix(p0, p1)
        assert np.allclose(matrix.sum(axis=0), 1.0)
        assert (matrix >= 0.0).all()

    @given(readout=st.floats(0.01, 0.3),
           asymmetry=st.floats(-0.5, 0.5))
    @settings(max_examples=50, deadline=None)
    def test_calibration_matrix_matches_flip_probabilities(
            self, readout, asymmetry):
        from repro.hardware.calibration import QubitCalibration

        record = QubitCalibration(t1_us=90.0, t2_us=70.0,
                                  readout_error=readout,
                                  single_qubit_error=0.002,
                                  readout_asymmetry=asymmetry)
        matrix = record.confusion_matrix()
        assert matrix[1][0] == pytest.approx(
            record.readout_flip_probability(0))
        assert matrix[0][1] == pytest.approx(
            record.readout_flip_probability(1))
        assert matrix[0][0] + matrix[1][0] == pytest.approx(1.0)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_inversion_is_exact_on_synthetic_noise(self, data, cal,
                                                   compiled_bv4):
        """apply(apply_confusion(p)) == p for any true distribution."""
        mitigator = ReadoutMitigator(compiled_bv4, cal)
        m = len(mitigator.cbits)
        assert m > 0
        weights = data.draw(st.lists(st.floats(0.0, 1.0),
                                     min_size=1 << m, max_size=1 << m))
        total = sum(weights)
        if total <= 0.0:
            weights[0] = 1.0
            total = 1.0
        truth = {}
        for index, weight in enumerate(weights):
            if weight > 0.0:
                truth[mitigator._string(index)] = weight / total
        noisy = mitigator.apply_confusion(truth)
        recovered = mitigator.apply(noisy)
        for outcome in set(truth) | set(recovered):
            assert recovered.get(outcome, 0.0) == pytest.approx(
                truth.get(outcome, 0.0), abs=1e-9)

    def test_inverts_the_executors_readout_channel(self, cal, compiled_bv4):
        """Mitigating a readout-noise-only run recovers ~ideal success."""
        noise = NoiseModel(cal, gate_errors=False, decoherence=False)
        expected = get_benchmark("BV4").expected_output
        baseline = execute(compiled_bv4, cal, trials=4096, seed=11,
                           expected=expected, noise_model=noise)
        ctx = MitigationContext(compiled=compiled_bv4, calibration=cal,
                                baseline=baseline, trials=4096, seed=11,
                                noise=noise)
        outcome = ReadoutStrategy().mitigate(ctx)
        # Raw success is visibly depressed by readout error alone...
        assert outcome.raw_success < 0.9
        # ...and inversion recovers the ideal (deterministic) answer to
        # within sampling error.
        assert outcome.mitigated_success > 0.97
        assert outcome.executions == 0

    def test_disabled_readout_noise_is_identity(self, cal, compiled_bv4):
        noise = NoiseModel(cal, readout_errors=False)
        mitigator = ReadoutMitigator(compiled_bv4, cal, noise=noise)
        dist = {mitigator._string(0): 0.25, mitigator._string(3): 0.75}
        assert mitigator.apply(dist) == pytest.approx(dist)


# ----------------------------------------------------------------------
# Gate folding
# ----------------------------------------------------------------------
class TestFolding:
    @given(seed=st.integers(0, 10_000),
           n_gates=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_scale_one_is_fingerprint_identical(self, seed, n_gates):
        circuit = random_circuit(3, n_gates, seed=seed)
        assert fold_circuit(circuit, 1.0).fingerprint() == \
            circuit.fingerprint()

    @given(seed=st.integers(0, 10_000),
           scale=st.sampled_from([3.0, 5.0, 7.0]))
    @settings(max_examples=30, deadline=None)
    def test_odd_integer_scales_fold_every_gate(self, seed, scale):
        circuit = random_circuit(3, 12, seed=seed)
        folded = fold_circuit(circuit, scale)
        assert achieved_scale(circuit, folded) == pytest.approx(scale)
        # Measurements pass through untouched.
        assert len(folded.measurements) == len(circuit.measurements)

    def test_folding_preserves_semantics(self):
        circuit = random_circuit(3, 15, seed=42, measure=False)
        reference = StateVector(3)
        for gate in circuit.gates:
            reference.apply_gate(gate.name, gate.qubits, param=gate.param)
        for scale in (1.0, 1.8, 3.0):
            state = StateVector(3)
            for gate in fold_circuit(circuit, scale).gates:
                state.apply_gate(gate.name, gate.qubits, param=gate.param)
            assert np.allclose(state.probabilities(),
                               reference.probabilities(), atol=1e-9)

    def test_fractional_scale_rounds_to_nearest_fold_count(self):
        circuit = random_circuit(4, 20, seed=0, measure=False)
        folded = fold_circuit(circuit, 2.0)
        # scale 2 over 20 gates: 10 gates folded once -> 40 gates.
        assert achieved_scale(circuit, folded) == pytest.approx(2.0)

    def test_scale_below_one_rejected(self):
        with pytest.raises(MitigationError):
            fold_circuit(random_circuit(2, 4, seed=0), 0.5)

    def test_folding_pass_in_pipeline(self, cal):
        """folded_pipeline compiles to a semantically equivalent but
        longer physical program, reusing the unfolded mapping prefix."""
        circuit = get_benchmark("BV4").build()
        options = CompilerOptions.r_smt_star()
        plain = compile_circuit(circuit, cal, options)
        folded = folded_pipeline(options, 3.0).run(circuit, cal, options)
        assert folded.physical.circuit.gate_count() > \
            plain.physical.circuit.gate_count()
        assert folded.placement == plain.placement
        names = [timing.name for timing in folded.pass_timings]
        assert "fold" in names

    def test_registered_in_pass_registry(self):
        from repro.compiler import make_pass, registered_passes

        assert "fold" in registered_passes()
        instance = make_pass("fold", CompilerOptions.r_smt_star())
        assert isinstance(instance, FoldingPass)


# ----------------------------------------------------------------------
# Extrapolation
# ----------------------------------------------------------------------
class TestExtrapolation:
    @given(data=st.data(),
           scales=st.sampled_from([(1.0, 2.0), (1.0, 2.0, 3.0),
                                   (1.0, 1.5, 2.0, 3.0)]))
    @settings(max_examples=60, deadline=None)
    def test_richardson_recovers_polynomial_decay(self, data, scales):
        """Exact for any polynomial of degree < #points."""
        degree = len(scales) - 1
        coeffs = data.draw(st.lists(
            st.floats(-1.0, 1.0, allow_nan=False),
            min_size=degree + 1, max_size=degree + 1))
        values = [sum(c * x ** k for k, c in enumerate(coeffs))
                  for x in scales]
        assert richardson_extrapolate(scales, values) == \
            pytest.approx(coeffs[0], abs=1e-6)

    @given(intercept=st.floats(0.1, 1.0), slope=st.floats(-0.3, 0.0))
    @settings(max_examples=50, deadline=None)
    def test_linear_fit_recovers_lines(self, intercept, slope):
        scales = (1.0, 1.5, 2.0)
        values = [intercept + slope * x for x in scales]
        assert extrapolate(scales, values, "linear") == \
            pytest.approx(intercept, abs=1e-9)

    def test_exp_fit_recovers_exponential_decay(self):
        scales = (1.0, 2.0, 3.0)
        values = [0.9 * np.exp(-0.2 * x) for x in scales]
        assert extrapolate(scales, values, "exp") == \
            pytest.approx(0.9, abs=1e-9)

    def test_duplicate_scales_rejected(self):
        with pytest.raises(MitigationError):
            richardson_extrapolate((1.0, 1.0, 2.0), (0.5, 0.5, 0.4))

    def test_unknown_fit_rejected(self):
        with pytest.raises(MitigationError):
            extrapolate((1.0, 2.0), (0.5, 0.4), "spline")


# ----------------------------------------------------------------------
# Scaled noise models and trace rescaling
# ----------------------------------------------------------------------
class TestScaledNoise:
    def test_rescaled_trace_matches_fresh_lowering(self, cal, compiled_bv4):
        """execute() under a ScaledNoiseModel is bit-identical whether
        the trace is freshly lowered or rescaled from the base trace."""
        expected = get_benchmark("BV4").expected_output
        base = NoiseModel(cal)
        for scale in (0.5, 1.7, 4.0):
            scaled = ScaledNoiseModel(base, scale)
            fresh = execute(compiled_bv4, cal, trials=TRIALS, seed=5,
                            expected=expected, noise_model=scaled)
            cache = TraceCache()
            ctx = make_context(cal, compiled_bv4, trace_cache=cache)
            cache.put(compiled_bv4, scaled, cal,
                      ctx.base_trace().rescaled(scale))
            reused = execute(compiled_bv4, cal, trials=TRIALS, seed=5,
                             expected=expected, noise_model=scaled,
                             trace_cache=cache)
            assert fresh.counts == reused.counts, scale

    def test_probabilities_clip_at_one(self, cal):
        from repro.ir.gates import Gate

        scaled = ScaledNoiseModel(NoiseModel(cal), 1e6)
        assert scaled.gate_error_probability(Gate("cx", (0, 1))) <= 1.0
        rates = scaled.idle_rates(0, 500.0)
        assert rates.total <= 1.0 + 1e-12
        # The conditional Pauli split survives renormalization.
        base = NoiseModel(cal).idle_rates(0, 500.0)
        assert rates.p_x / rates.total == \
            pytest.approx(base.p_x / base.total)

    def test_scale_one_matches_base_model(self, cal, compiled_bv4):
        expected = get_benchmark("BV4").expected_output
        plain = execute(compiled_bv4, cal, trials=TRIALS, seed=9,
                        expected=expected)
        unscaled = execute(compiled_bv4, cal, trials=TRIALS, seed=9,
                           expected=expected,
                           noise_model=ScaledNoiseModel(NoiseModel(cal),
                                                        1.0))
        assert plain.counts == unscaled.counts

    def test_trace_key_none_for_unknown_base(self, cal):
        class Exotic(NoiseModel):
            def gate_error_probability(self, gate,
                                       concurrent_neighbors=0):
                return 0.0

        assert ScaledNoiseModel(Exotic(cal), 2.0).trace_key() is None
        assert ScaledNoiseModel(NoiseModel(cal), 2.0).trace_key() \
            is not None

    def test_negative_scale_rejected(self, cal):
        with pytest.raises(MitigationError):
            ScaledNoiseModel(NoiseModel(cal), -0.1)


class TestTrialFallbackWarning:
    def test_warns_once_per_class(self, cal, compiled_bv4):
        class HookOverride(NoiseModel):
            def sample_idle_error(self, qubit, idle_slots, rng):
                return []

        noise = HookOverride(cal)
        with pytest.warns(RuntimeWarning, match="engine='trial'"):
            execute(compiled_bv4, cal, trials=4, seed=0,
                    noise_model=noise)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            execute(compiled_bv4, cal, trials=4, seed=0,
                    noise_model=noise)


# ----------------------------------------------------------------------
# Strategies and composition
# ----------------------------------------------------------------------
class TestStrategies:
    def test_zne_validation(self):
        with pytest.raises(MitigationError):
            ZneStrategy(scales=(1.0,))
        with pytest.raises(MitigationError):
            ZneStrategy(scales=(1.0, 1.0))
        with pytest.raises(MitigationError):
            ZneStrategy(scales=(0.5, 1.0))
        with pytest.raises(MitigationError):
            ZneStrategy(fit="spline")
        with pytest.raises(MitigationError):
            ZneStrategy(amplifier="wishful")
        with pytest.raises(MitigationError):
            ZneStrategy(amplifier="fold", scale_readout=True)

    def test_declared_cost_matches_performed_executions(self, cal,
                                                        compiled_bv4):
        for strategy in (ZneStrategy(),
                         ZneStrategy(scales=(1.0, 2.0, 3.0, 4.0)),
                         ReadoutStrategy(),
                         strategy_from_spec("readout+zne")):
            outcome = strategy.mitigate(make_context(cal, compiled_bv4))
            assert outcome.executions == strategy.extra_executions(), \
                strategy.name

    def test_spec_parsing(self):
        assert strategy_from_spec("zne").name == "zne"
        assert strategy_from_spec("readout").name == "readout"
        stacked = strategy_from_spec("readout+zne")
        assert isinstance(stacked, ComposedStrategy)
        assert stacked.name == "readout+zne"
        with pytest.raises(MitigationError):
            strategy_from_spec("magic")
        # Estimator-only strategies are rejected in leading slots: a
        # "zne+readout" stack would silently run zero scaled
        # executions while advertising ZNE's name and cost.
        with pytest.raises(MitigationError, match="readout\\+zne"):
            strategy_from_spec("zne+readout")

    def test_composed_applies_readout_to_every_scale(self, cal,
                                                     compiled_bv4):
        """The stack's scale-1 point equals standalone readout
        mitigation of the baseline — transforms reach the estimator."""
        ctx = make_context(cal, compiled_bv4)
        stacked = ComposedStrategy([ReadoutStrategy(), ZneStrategy()])
        outcome = stacked.mitigate(ctx)
        readout_only = ReadoutStrategy().mitigate(ctx)
        scale1 = dict((s, v) for s, v in outcome.points)[1.0]
        assert scale1 == pytest.approx(readout_only.mitigated_success)
        assert outcome.raw_success == pytest.approx(
            readout_only.raw_success)

    def test_scaled_readout_rejected_under_transforms(self, cal,
                                                      compiled_bv4):
        """readout+zne with readout amplification would apply an
        unscaled confusion inverse to scaled channels — rejected."""
        stacked = ComposedStrategy([ReadoutStrategy(),
                                    ZneStrategy(scale_readout=True)])
        with pytest.raises(MitigationError, match="scale_readout"):
            stacked.mitigate(make_context(cal, compiled_bv4))
        # Standalone scaled-readout ZNE remains fine.
        outcome = ZneStrategy(scale_readout=True).mitigate(
            make_context(cal, compiled_bv4))
        assert 0.0 <= outcome.mitigated_success <= 1.0

    def test_context_requires_expected(self, cal, compiled_bv4):
        baseline = execute(compiled_bv4, cal, trials=8, seed=0)
        with pytest.raises(MitigationError):
            MitigationContext(compiled=compiled_bv4, calibration=cal,
                              baseline=baseline)


# ----------------------------------------------------------------------
# Sweep-runtime integration (acceptance: cache reuse for scaled cells)
# ----------------------------------------------------------------------
class TestMitigationSweep:
    def test_scaled_cells_hit_trace_cache(self, cal):
        """Replicated mitigated cells reuse the scaled-noise traces:
        the extra trace hits can only come from scaled executions."""
        spec = get_benchmark("BV4")
        circuit = spec.build()

        def cells(mitigation):
            return [SweepCell(circuit=circuit, calibration=cal,
                              options=CompilerOptions.r_smt_star(),
                              expected=spec.expected_output, trials=64,
                              seed=seed, mitigation=mitigation,
                              key=("BV4", seed))
                    for seed in (0, 1, 2)]

        plain = run_sweep(cells(None))
        mitigated = run_sweep(cells(ZneStrategy()))
        assert mitigated.trace_stats.hits > plain.trace_stats.hits > 0

    def test_folded_cells_hit_stage_cache(self, cal):
        """Fold-amplified cells reuse the mapping prefix (first cell)
        and whole folded pipelines (replicas) via the stage cache."""
        spec = get_benchmark("BV4")
        cells = [SweepCell(circuit=spec.build(), calibration=cal,
                           options=CompilerOptions.r_smt_star(),
                           expected=spec.expected_output, trials=64,
                           seed=seed,
                           mitigation=ZneStrategy(scales=(1.0, 3.0),
                                                  amplifier="fold"),
                           key=("BV4", seed))
                 for seed in (0, 1)]
        sweep = run_sweep(cells)
        assert sweep.stage_stats.hits > 0

    def test_parallel_matches_serial(self, cal):
        """Mitigated grids stay bit-identical across the process pool
        (strategies and results pickle cleanly)."""
        specs = {name: get_benchmark(name) for name in ("BV4", "HS2")}
        cells = [SweepCell(circuit=spec.build(), calibration=cal,
                           options=options,
                           expected=spec.expected_output, trials=64,
                           seed=seed,
                           mitigation=strategy_from_spec("readout+zne"),
                           key=(name, options.variant, seed))
                 for name, spec in specs.items()
                 for options in (CompilerOptions.r_smt_star(),
                                 CompilerOptions.t_smt_star(routing="1bp"))
                 for seed in (0, 1)]
        serial = run_sweep(cells, workers=0)
        parallel = run_sweep(cells, workers=2)
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert a.mitigation.points == b.mitigation.points
            assert a.mitigation.mitigated_success == \
                b.mitigation.mitigated_success

    def test_unmitigated_cells_unchanged(self, cal):
        spec = get_benchmark("BV4")
        cell = SweepCell(circuit=spec.build(), calibration=cal,
                         options=CompilerOptions.r_smt_star(),
                         expected=spec.expected_output, trials=64,
                         seed=0, key="BV4")
        result = run_sweep([cell]).results[0]
        assert result.mitigation is None
        with pytest.raises(ReproError):
            result.mitigated_success


# ----------------------------------------------------------------------
# Acceptance: ZNE improves success on Table-2 benchmarks
# ----------------------------------------------------------------------
class TestZneImprovesSuccess:
    BENCHMARKS = ("BV4", "BV6", "HS2", "Toffoli")

    def test_improves_on_at_least_three_benchmarks(self, cal):
        spec_map = {name: get_benchmark(name) for name in self.BENCHMARKS}
        cells = [SweepCell(circuit=spec.build(), calibration=cal,
                           options=CompilerOptions.r_smt_star(),
                           expected=spec.expected_output, trials=1024,
                           seed=7, mitigation=ZneStrategy(), key=name)
                 for name, spec in spec_map.items()]
        sweep = run_sweep(cells)
        improved = [r.key for r in sweep if r.mitigation.gain > 0.0]
        assert len(improved) >= 3, improved
        mean_raw = sum(r.mitigation.raw_success for r in sweep) / len(sweep)
        mean_mit = sum(r.mitigation.mitigated_success
                       for r in sweep) / len(sweep)
        assert mean_mit > mean_raw

    def test_cli_mitigate_reports_improvement(self):
        out = io.StringIO()
        assert main(["mitigate", "--strategy", "zne", "--trials", "512",
                     "--benchmarks", *self.BENCHMARKS], out=out) == 0
        text = out.getvalue()
        assert "mitigated" in text
        improved = int(text.split("improved on ")[1].split("/")[0])
        assert improved >= 3, text


# ----------------------------------------------------------------------
# Persistent disk cache
# ----------------------------------------------------------------------
class TestDiskCache:
    def test_programs_survive_process_boundary(self, cal, tmp_path):
        """A second cache instance on the same directory (simulating a
        new process) serves the compilation as a hit."""
        circuit = get_benchmark("BV4").build()
        options = CompilerOptions.r_smt_star()
        first = PersistentCompileCache(tmp_path)
        program, hit = first.get_or_compile(circuit, cal, options)
        assert not hit

        second = PersistentCompileCache(tmp_path)
        replayed, hit = second.get_or_compile(circuit, cal, options)
        assert hit
        assert replayed.fingerprint() == program.fingerprint()
        assert second.stats.hits == 1 and second.stats.misses == 0

    def test_stage_artifacts_survive_too(self, cal, tmp_path):
        circuit = get_benchmark("BV4").build()
        first = PersistentCompileCache(tmp_path)
        first.get_or_compile(circuit, cal, CompilerOptions.r_smt_star())

        second = PersistentCompileCache(tmp_path)
        # A post-mapping variation in a fresh process still reuses the
        # on-disk mapping artifact.
        program, hit = second.get_or_compile(
            circuit, cal, CompilerOptions.r_smt_star().with_(peephole=True))
        assert not hit
        assert second.stages.stats.hits > 0
        cached_stages = [timing.name for timing in program.pass_timings
                         if timing.cached]
        assert "mapping[r-smt*]" in cached_stages

    def test_corrupt_entries_fail_integrity_check(self, cal, tmp_path):
        """Flipping stored bytes must degrade to a miss, never a crash
        or a bogus artifact."""
        circuit = get_benchmark("BV4").build()
        options = CompilerOptions.r_smt_star()
        PersistentCompileCache(tmp_path).get_or_compile(circuit, cal,
                                                        options)
        for path in tmp_path.rglob("*"):
            if path.is_file():
                blob = bytearray(path.read_bytes())
                blob[len(blob) // 2] ^= 0xFF
                path.write_bytes(bytes(blob))

        fresh = PersistentCompileCache(tmp_path)
        program, hit = fresh.get_or_compile(circuit, cal, options)
        assert not hit  # every corrupted entry was rejected
        assert program.physical.circuit.gate_count() > 0

    def test_store_round_trip_checks_key(self, tmp_path):
        from repro.runtime import DiskStore

        store = DiskStore(tmp_path)
        store.store("stage", "key-a", {"value": 1})
        assert store.load("stage", "key-a") == {"value": 1}
        assert store.load("stage", "key-b") is None

    def test_sweep_cache_dir_round_trip(self, cal, tmp_path):
        spec = get_benchmark("BV4")
        cells = [SweepCell(circuit=spec.build(), calibration=cal,
                           options=CompilerOptions.r_smt_star(),
                           expected=spec.expected_output, trials=32,
                           seed=0, key="BV4")]
        cold = run_sweep(cells, cache_dir=tmp_path)
        warm = run_sweep(cells, cache_dir=tmp_path)
        assert cold.compile_stats.hits == 0
        assert warm.compile_stats.hits == 1
        assert cold.results[0].execution.counts == \
            warm.results[0].execution.counts


# ----------------------------------------------------------------------
# The experiment harness
# ----------------------------------------------------------------------
class TestMitigationStudy:
    def test_study_shape_and_text(self, cal):
        from repro.experiments import run_mitigation_study

        result = run_mitigation_study(
            benchmarks=("BV4", "HS2"),
            variants=[CompilerOptions.r_smt_star()],
            strategies=[ZneStrategy(), ReadoutStrategy()],
            calibration=cal, trials=128, seed=7)
        assert set(result.runs) == {"BV4", "HS2"}
        assert result.strategies == ["zne", "readout"]
        assert 0.0 <= result.mitigated("BV4", "r-smt*", "zne") <= 1.0
        assert result.raw("BV4", "r-smt*") == pytest.approx(
            result.cell("BV4", "r-smt*", "readout").success_rate)
        text = result.to_text()
        assert "geomean lift" in text and "BV4" in text
