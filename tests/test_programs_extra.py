"""Tests for the extra (non-deterministic-output) benchmarks."""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import CircuitError
from repro.hardware import default_ibmq16_calibration
from repro.programs.extra import (
    ghz,
    ghz_ideal_distribution,
    ghz_support,
    w_ideal_distribution,
    w_state,
    w_support,
)
from repro.simulator import StateVector, execute, ideal_noise_model


def outcome_distribution(circuit):
    state = StateVector(circuit.n_qubits)
    for g in circuit.gates:
        if g.is_unitary and g.name != "barrier":
            state.apply_gate(g.name, g.qubits, param=g.param)
    probs = state.probabilities()
    n = circuit.n_qubits
    out = {}
    for index, p in enumerate(probs):
        if p < 1e-12:
            continue
        bits = "".join(str((index >> (n - 1 - q)) & 1) for q in range(n))
        out[bits] = out.get(bits, 0.0) + float(p)
    return out


class TestGhz:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_ideal_distribution(self, n):
        measured = outcome_distribution(ghz(n))
        expected = ghz_ideal_distribution(n)
        assert set(measured) == set(expected)
        for outcome, p in expected.items():
            assert measured[outcome] == pytest.approx(p)

    def test_support(self):
        assert ghz_support(3) == {"000", "111"}

    def test_too_small_rejected(self):
        with pytest.raises(CircuitError):
            ghz(1)

    def test_cnot_count(self):
        assert ghz(5).cnot_count() == 4


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_ideal_distribution(self, n):
        measured = outcome_distribution(w_state(n))
        expected = w_ideal_distribution(n)
        assert set(measured) == set(expected)
        for outcome, p in expected.items():
            assert measured[outcome] == pytest.approx(p, abs=1e-9)

    def test_support_is_one_hot(self):
        assert w_support(3) == {"100", "010", "001"}

    def test_too_small_rejected(self):
        with pytest.raises(CircuitError):
            w_state(1)


class TestExecutionWithOverlapMetric:
    def test_ghz_noise_free_overlap_is_one(self):
        cal = default_ibmq16_calibration()
        program = compile_circuit(ghz(4), cal, CompilerOptions.r_smt_star())
        result = execute(program, cal, trials=4096, seed=0,
                         noise_model=ideal_noise_model(cal))
        assert result.overlap == pytest.approx(1.0, abs=0.03)
        assert set(result.ideal_distribution) == ghz_support(4)

    def test_ghz_noisy_overlap_degrades_but_beats_baseline(self):
        cal = default_ibmq16_calibration()
        good = compile_circuit(ghz(4), cal, CompilerOptions.r_smt_star())
        bad = compile_circuit(ghz(4), cal, CompilerOptions.qiskit())
        r_good = execute(good, cal, trials=1024, seed=1)
        r_bad = execute(bad, cal, trials=1024, seed=1)
        assert 0.2 < r_good.overlap < 1.0
        assert r_good.overlap >= r_bad.overlap - 0.05

    def test_w_state_compiles_and_runs(self):
        cal = default_ibmq16_calibration()
        program = compile_circuit(w_state(3), cal,
                                  CompilerOptions.greedy_e())
        result = execute(program, cal, trials=512, seed=2)
        assert 0.2 < result.overlap <= 1.0
