"""Tests for the noise-model extensions: readout asymmetry, crosstalk."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import CalibrationError
from repro.hardware import (
    Calibration,
    QubitCalibration,
    default_ibmq16_calibration,
    ibmq16_topology,
    uniform_calibration,
)
from repro.ir.circuit import Circuit
from repro.programs import build_benchmark, expected_output
from repro.simulator import NoiseModel, execute


class TestReadoutAsymmetry:
    def record(self, asym):
        return QubitCalibration(t1_us=90, t2_us=70, readout_error=0.1,
                                single_qubit_error=0.001,
                                readout_asymmetry=asym)

    def test_flip_probabilities(self):
        rec = self.record(0.5)
        assert rec.readout_flip_probability(1) == pytest.approx(0.15)
        assert rec.readout_flip_probability(0) == pytest.approx(0.05)
        # Symmetric average preserved.
        avg = (rec.readout_flip_probability(0)
               + rec.readout_flip_probability(1)) / 2
        assert avg == pytest.approx(rec.readout_error)

    def test_zero_asymmetry_is_symmetric(self):
        rec = self.record(0.0)
        assert rec.readout_flip_probability(0) == \
            rec.readout_flip_probability(1)

    def test_invalid_asymmetry_rejected(self):
        with pytest.raises(CalibrationError):
            self.record(1.0)
        with pytest.raises(CalibrationError):
            QubitCalibration(t1_us=90, t2_us=70, readout_error=0.6,
                             single_qubit_error=0.001,
                             readout_asymmetry=0.9)

    def test_json_roundtrip_preserves_asymmetry(self):
        topo = ibmq16_topology()
        cal = uniform_calibration(topo)
        qubits = {q: self.record(0.3) for q in topo.iter_qubits()}
        asym_cal = Calibration(topology=topo, qubits=qubits,
                               edges=cal.edges, label="asym")
        back = Calibration.from_json(asym_cal.to_json())
        assert back.qubits[0].readout_asymmetry == pytest.approx(0.3)

    def test_sampled_flip_rates_follow_bit(self):
        topo = ibmq16_topology()
        base = uniform_calibration(topo)
        qubits = {q: self.record(0.8) for q in topo.iter_qubits()}
        cal = Calibration(topology=topo, qubits=qubits, edges=base.edges)
        noise = NoiseModel(cal, gate_errors=False, decoherence=False)
        rng = np.random.default_rng(0)
        flips1 = sum(noise.sample_readout_flip(0, rng, bit=1)
                     for _ in range(4000))
        flips0 = sum(noise.sample_readout_flip(0, rng, bit=0)
                     for _ in range(4000))
        assert flips1 > 2.5 * flips0  # 0.18 vs 0.02 expected

    def test_asymmetry_biases_measured_ones(self):
        """With strong |1>-flips, the all-ones answer suffers more."""
        topo = ibmq16_topology()
        base = uniform_calibration(topo, cnot_error=0.0,
                                   single_qubit_error=0.0)
        skewed = {q: self.record(0.9) for q in topo.iter_qubits()}
        cal = Calibration(topology=topo, qubits=skewed, edges=base.edges)
        circuit = Circuit(2, 2).x(0).x(1).measure_all()
        program = compile_circuit(circuit, cal,
                                  CompilerOptions.greedy_e())
        noise = NoiseModel(cal, gate_errors=False, decoherence=False)
        result = execute(program, cal, trials=4000, seed=1, expected="11",
                         noise_model=noise)
        # p(correct) = (1 - 0.19)^2 ~ 0.66 rather than 0.81 symmetric.
        assert result.success_rate == pytest.approx(0.81 ** 2, abs=0.04)


class TestCrosstalk:
    def test_negative_factor_rejected(self):
        cal = default_ibmq16_calibration()
        with pytest.raises(ValueError):
            NoiseModel(cal, crosstalk_factor=-0.5)

    def test_probability_scaling(self):
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.04)
        noise = NoiseModel(cal, crosstalk_factor=0.5)
        from repro.ir.gates import Gate
        gate = Gate("cx", (0, 1))
        assert noise.gate_error_probability(gate) == pytest.approx(0.04)
        assert noise.gate_error_probability(gate, 2) == pytest.approx(0.08)

    def test_probability_capped(self):
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.3)
        noise = NoiseModel(cal, crosstalk_factor=10.0)
        from repro.ir.gates import Gate
        assert noise.gate_error_probability(Gate("cx", (0, 1)), 5) == 0.5

    def test_crosstalk_lowers_success_of_parallel_programs(self):
        """HS6 runs its CZ pairs concurrently on nearby edges; turning
        crosstalk on must reduce its success rate."""
        cal = default_ibmq16_calibration()
        program = compile_circuit(build_benchmark("HS6"), cal,
                                  CompilerOptions.r_smt_star())
        clean = execute(program, cal, trials=1024, seed=3,
                        expected=expected_output("HS6"))
        noisy = execute(program, cal, trials=1024, seed=3,
                        expected=expected_output("HS6"),
                        noise_model=NoiseModel(cal, crosstalk_factor=3.0))
        assert noisy.success_rate < clean.success_rate

    def test_serial_program_unaffected(self):
        """A single-CNOT-chain program has no concurrent 2q gates, so
        crosstalk cannot change its error exposure."""
        cal = default_ibmq16_calibration()
        circuit = Circuit(2, 2).cx(0, 1).cx(0, 1).cx(0, 1).measure_all()
        program = compile_circuit(circuit, cal, CompilerOptions.greedy_e())
        a = execute(program, cal, trials=512, seed=4, expected="00")
        b = execute(program, cal, trials=512, seed=4, expected="00",
                    noise_model=NoiseModel(cal, crosstalk_factor=5.0))
        assert a.counts == b.counts
