"""Unit tests for repro.ir.dag."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.programs import random_circuit


class TestDependencyDAG:
    def test_chain_dependencies(self):
        c = Circuit(1).h(0).x(0).z(0)
        dag = DependencyDAG.from_circuit(c)
        assert dag.preds == [set(), {0}, {1}]
        assert dag.succs == [{1}, {2}, set()]

    def test_independent_gates_have_no_edges(self):
        c = Circuit(2).h(0).h(1)
        dag = DependencyDAG.from_circuit(c)
        assert dag.preds == [set(), set()]

    def test_cnot_joins_chains(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        dag = DependencyDAG.from_circuit(c)
        assert dag.preds[2] == {0, 1}

    def test_roots(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        assert DependencyDAG.from_circuit(c).roots() == [0, 1]

    def test_program_order_is_topological(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        dag = DependencyDAG.from_circuit(c)
        assert dag.is_topological(dag.topological_order())

    def test_non_topological_detected(self):
        c = Circuit(1).h(0).x(0)
        dag = DependencyDAG.from_circuit(c)
        assert not dag.is_topological([1, 0])

    def test_longest_path_unit_weights(self):
        c = Circuit(2).h(0).cx(0, 1).x(1)
        dag = DependencyDAG.from_circuit(c)
        assert dag.longest_path_length([1.0, 1.0, 1.0]) == pytest.approx(3.0)

    def test_longest_path_parallel(self):
        c = Circuit(2).h(0).h(1)
        dag = DependencyDAG.from_circuit(c)
        assert dag.longest_path_length([2.0, 5.0]) == pytest.approx(5.0)

    def test_longest_path_wrong_length_rejected(self):
        c = Circuit(1).h(0)
        dag = DependencyDAG.from_circuit(c)
        with pytest.raises(Exception):
            dag.longest_path_length([1.0, 1.0])

    def test_asap_levels(self):
        c = Circuit(2).h(0).cx(0, 1).x(1)
        assert DependencyDAG.from_circuit(c).asap_levels() == [0, 1, 2]

    def test_dependency_pairs(self):
        c = Circuit(1).h(0).x(0)
        assert DependencyDAG.from_circuit(c).dependency_pairs() == [(0, 1)]


class TestDagProperties:
    @given(seed=st.integers(0, 10_000), n_qubits=st.integers(2, 6),
           n_gates=st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_random_circuit_dag_invariants(self, seed, n_qubits, n_gates):
        circuit = random_circuit(n_qubits, n_gates, seed=seed)
        dag = DependencyDAG.from_circuit(circuit)
        # Edges always point forward in program order.
        for i, preds in enumerate(dag.preds):
            assert all(p < i for p in preds)
        # preds/succs are mutually consistent.
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert i in dag.succs[p]
        # Critical path with unit weights is between 1 and gate count.
        n = len(dag)
        if n:
            length = dag.longest_path_length([1.0] * n)
            assert 1.0 <= length <= n

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_gates_on_same_qubit_are_ordered(self, seed):
        circuit = random_circuit(3, 25, seed=seed)
        dag = DependencyDAG.from_circuit(circuit)
        # Any two gates sharing a qubit must be connected by a directed
        # path (transitively) — check the immediate-chain construction:
        last = {}
        for i, gate in enumerate(circuit.gates):
            for q in gate.qubits:
                if q in last:
                    assert last[q] in dag.preds[i]
                last[q] = i
