"""Array-backend seam tests: registry, budgets, bit-identity, caches.

The contract under test is the one the ``"gpu"`` engine rests on:
whatever array backend runs the statevector contraction, every RNG
draw happens in host numpy, so counts are **bit-identical** across
backends, chunk sizes, and memory budgets — only throughput differs.
"""

import io
import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import SimulationError
from repro.hardware import default_ibmq16_calibration
from repro.programs import build_benchmark, expected_output
from repro.runtime import SweepCell, cell_fingerprint, run_sweep
from repro.simulator import (
    CompactProgram,
    NoiseModel,
    ProgramTrace,
    execute,
)
from repro.simulator.batch import (
    batch_plan_probabilities,
    plan_events,
    run_batched,
)
from repro.simulator import xp
from repro.simulator.xp import (
    ArrayBackend,
    NumpyBackend,
    array_backend_available,
    array_backend_status,
    best_accelerated_backend,
    default_array_backend,
    get_array_backend,
    register_array_backend,
    registered_array_backends,
    resolve_array_backend,
    set_default_array_backend,
)

TRIALS = 2048
BENCHMARKS = ["BV4", "Toffoli", "HS2"]


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def programs(cal):
    return {name: compile_circuit(build_benchmark(name), cal,
                                  CompilerOptions.r_smt_star())
            for name in BENCHMARKS}


@pytest.fixture(scope="module")
def bv4_trace(cal, programs):
    compiled = programs["BV4"]
    compact = CompactProgram(compiled.physical.circuit,
                             compiled.physical.times,
                             topology=cal.topology)
    return ProgramTrace(compact, NoiseModel(cal))


def sample_plans(trace, n_plans=10, seed=9):
    """A reproducible batch of non-trivial error plans for *trace*."""
    rng = np.random.default_rng(seed)
    occurred = rng.random((256, trace.n_sites)) < trace.site_prob
    plans = []
    for row in np.nonzero(occurred.any(axis=1))[0]:
        sites = np.nonzero(occurred[row])[0]
        choices = np.zeros(sites.size, dtype=np.int64)
        plans.append(plan_events(trace, sites, choices))
        if len(plans) == n_plans:
            break
    assert len(plans) == n_plans
    return plans


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_array_backends()
        assert "numpy" in names and "torch" in names and "cupy" in names

    def test_numpy_always_available(self):
        assert array_backend_available("numpy")
        assert isinstance(get_array_backend("numpy"), NumpyBackend)
        assert "available" in array_backend_status()["numpy"]

    def test_instances_are_shared(self):
        assert get_array_backend("numpy") is get_array_backend("NuMpY")

    def test_unknown_name_has_did_you_mean(self):
        with pytest.raises(SimulationError, match="did you mean 'torch'"):
            get_array_backend("torhc")
        with pytest.raises(SimulationError, match="unknown array backend"):
            resolve_array_backend("nonsense")

    def test_status_covers_every_registered_name(self):
        status = array_backend_status()
        assert set(status) == set(registered_array_backends())
        for text in status.values():
            assert text.startswith(("available", "unavailable"))

    def test_third_party_registration(self):
        @register_array_backend("test-dummy")
        class Dummy(NumpyBackend):
            name = "test-dummy"

        try:
            assert "test-dummy" in registered_array_backends()
            assert isinstance(get_array_backend("test-dummy"), Dummy)
        finally:
            xp._FACTORIES.pop("test-dummy", None)
            xp._INSTANCES.pop("test-dummy", None)

    def test_unavailable_backend_warns_once_and_falls_back(self):
        @register_array_backend("test-broken")
        def broken():
            raise ImportError("No module named 'brokenlib'")

        try:
            with pytest.raises(SimulationError, match="unavailable"):
                get_array_backend("test-broken")
            with pytest.warns(RuntimeWarning, match="brokenlib"):
                backend = resolve_array_backend("test-broken")
            assert backend.name == "numpy"
            # Second resolve: silent (warn-once), same fallback.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_array_backend("test-broken").name == "numpy"
        finally:
            xp._FACTORIES.pop("test-broken", None)
            xp._WARNED_UNAVAILABLE.discard("test-broken")

    def test_default_backend_round_trip(self):
        assert default_array_backend() == "numpy"
        set_default_array_backend("numpy")
        assert resolve_array_backend(None).name == "numpy"
        with pytest.raises(SimulationError, match="unknown array backend"):
            set_default_array_backend("nope")
        set_default_array_backend(None)
        assert default_array_backend() == "numpy"

    def test_instance_passes_through(self):
        backend = get_array_backend("numpy")
        assert resolve_array_backend(backend) is backend
        assert get_array_backend(backend) is backend


class TestAmplitudeBudget:
    def test_numpy_native_budget_is_64_mib(self):
        # 64 MiB of complex128 = the old _CHUNK_AMPLITUDES constant.
        assert get_array_backend("numpy").native_amplitude_budget() \
            == 1 << 22

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(xp.CHUNK_ENV, "1")
        assert get_array_backend("numpy").amplitude_budget() == 65536

    def test_env_override_validation(self, monkeypatch):
        monkeypatch.setenv(xp.CHUNK_ENV, "zero")
        with pytest.raises(SimulationError, match="number of MiB"):
            get_array_backend("numpy").amplitude_budget()
        monkeypatch.setenv(xp.CHUNK_ENV, "-3")
        with pytest.raises(SimulationError, match="positive"):
            get_array_backend("numpy").amplitude_budget()

    def test_budget_does_not_change_results(self, bv4_trace, monkeypatch):
        plans = sample_plans(bv4_trace)
        baseline = batch_plan_probabilities(bv4_trace, plans)
        monkeypatch.setenv(xp.CHUNK_ENV, "0.001")  # a handful of plans
        squeezed = batch_plan_probabilities(bv4_trace, plans)
        np.testing.assert_array_equal(baseline, squeezed)


class TestChunkInvariance:
    def test_chunk_sizes_agree_exactly(self, bv4_trace):
        plans = sample_plans(bv4_trace)
        default = batch_plan_probabilities(bv4_trace, plans)
        for chunk in (1, 3):
            chunked = batch_plan_probabilities(bv4_trace, plans,
                                               chunk=chunk)
            np.testing.assert_array_equal(default, chunked)

    def test_chunk_must_be_positive(self, bv4_trace):
        with pytest.raises(ValueError, match="chunk must be >= 1"):
            batch_plan_probabilities(bv4_trace, sample_plans(bv4_trace, 2),
                                     chunk=0)

    def test_run_batched_seed_determinism_per_backend(self, bv4_trace):
        a = run_batched(bv4_trace, 512, np.random.default_rng(3))
        b = run_batched(bv4_trace, 512, np.random.default_rng(3),
                        array_backend="numpy")
        assert a == b


class TestCrossBackendBitIdentity:
    """Counts must match numpy exactly on every available backend."""

    @pytest.mark.parametrize("backend_name", ["torch", "cupy"])
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_counts_bit_identical(self, cal, programs, bench,
                                  backend_name):
        if not array_backend_available(backend_name):
            pytest.skip(f"array backend {backend_name!r} not installed")
        compiled = programs[bench]
        expected = expected_output(bench)
        reference = execute(compiled, cal, trials=TRIALS, seed=11,
                            expected=expected, array_backend="numpy")
        device = execute(compiled, cal, trials=TRIALS, seed=11,
                         expected=expected, array_backend=backend_name)
        assert device.counts == reference.counts

    @pytest.mark.parametrize("backend_name", ["torch", "cupy"])
    def test_plan_matrices_match_to_float_tolerance(self, bv4_trace,
                                                    backend_name):
        # The probability matrices themselves may differ at float ulp
        # level across libraries; the *counts* identity above holds
        # because sampling consumes host-normalized rows. Pin the
        # matrices to tight tolerance as an early-warning diagnostic.
        if not array_backend_available(backend_name):
            pytest.skip(f"array backend {backend_name!r} not installed")
        plans = sample_plans(bv4_trace)
        host = batch_plan_probabilities(bv4_trace, plans,
                                        array_backend="numpy")
        device = batch_plan_probabilities(bv4_trace, plans,
                                          array_backend=backend_name)
        np.testing.assert_allclose(device, host, rtol=1e-12, atol=1e-14)


class TestGpuEngine:
    def test_gpu_engine_registered(self):
        from repro.backend import registered_engines

        assert "gpu" in registered_engines()

    def test_gpu_engine_listed_by_cli(self):
        out = io.StringIO()
        assert main(["engines"], out=out) == 0
        text = out.getvalue()
        assert "gpu" in text
        assert "numpy" in text and "torch" in text and "cupy" in text

    def test_gpu_matches_batched_counts(self, cal, programs):
        compiled = programs["BV4"]
        expected = expected_output("BV4")
        batched = execute(compiled, cal, trials=TRIALS, seed=5,
                          expected=expected, engine="batched")
        with warnings.catch_warnings():
            # Without an accelerator the engine warns (once) that it is
            # degrading to numpy; counts must still match exactly.
            warnings.simplefilter("ignore", RuntimeWarning)
            gpu = execute(compiled, cal, trials=TRIALS, seed=5,
                          expected=expected, engine="gpu")
        assert gpu.counts == batched.counts

    def test_gpu_engine_picks_accelerated_backend_when_present(self):
        best = best_accelerated_backend()
        if best is None:
            assert not array_backend_available("torch")
            assert not array_backend_available("cupy")
        else:
            assert best.name in xp.ACCELERATED_PREFERENCE

    def test_non_array_engine_warns_when_backend_requested(self, cal,
                                                           programs):
        from repro.simulator import executor

        executor._WARNED_ARRAY_IGNORED.discard("trial")
        with pytest.warns(RuntimeWarning,
                          match="array_backend selection is ignored"):
            execute(programs["BV4"], cal, trials=8, seed=0,
                    engine="trial", array_backend="numpy")


class TestSweepCacheSharing:
    """The array backend must stay out of every cache key: sweeping the
    same grid per backend costs zero extra compiles or trace builds."""

    def make_cells(self, cal, array_backend):
        spec_names = ("BV4", "Toffoli")
        cells = []
        for name in spec_names:
            circuit = build_benchmark(name)
            for seed in (0, 1):
                cells.append(SweepCell(
                    circuit=circuit, calibration=cal,
                    options=CompilerOptions.r_smt_star(),
                    expected=expected_output(name), trials=128,
                    seed=seed, array_backend=array_backend,
                    key=(name, seed)))
        return cells

    def test_fingerprint_excludes_array_backend(self, cal):
        plain = self.make_cells(cal, None)
        torch = self.make_cells(cal, "torch")
        for a, b in zip(plain, torch):
            assert cell_fingerprint(a) == cell_fingerprint(b)

    def test_no_extra_cache_misses_across_backends(self, cal):
        baseline = run_sweep(self.make_cells(cal, None))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            selected = run_sweep(self.make_cells(cal, "torch"))
        assert selected.compile_stats.misses == \
            baseline.compile_stats.misses
        assert selected.trace_stats.misses == baseline.trace_stats.misses
        # Counts are backend-independent, so the journaled results are
        # interchangeable too (torch falls back to numpy when absent —
        # same contract, same bits).
        for a, b in zip(baseline, selected):
            assert a.execution.counts == b.execution.counts


class TestCliFlags:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_run_accepts_array_backend(self):
        import os

        try:
            code, text = self.run_cli(
                "run", "--benchmark", "BV4", "--trials", "64",
                "--array-backend", "numpy", "--chunk-mib", "8")
        finally:
            os.environ.pop(xp.CHUNK_ENV, None)  # --chunk-mib sets it
        assert code == 0
        assert "success rate" in text

    def test_run_rejects_unknown_array_backend(self, capsys):
        code, _ = self.run_cli(
            "run", "--benchmark", "BV4", "--trials", "64",
            "--array-backend", "torhc")
        assert code == 1
        assert "did you mean 'torch'" in capsys.readouterr().err

    def test_sweep_accepts_array_backend(self):
        code, text = self.run_cli(
            "sweep", "--benchmarks", "BV4", "--variants", "r-smt*",
            "--trials", "64", "--array-backend", "numpy")
        assert code == 0
        assert "BV4" in text
