"""Tests for routing cost tables (EC/Delta matrices, best paths)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.hardware.calibration import uniform_calibration
from repro.hardware.calibration_gen import default_ibmq16_calibration
from repro.hardware.reliability import ReliabilityTables, route_cost
from repro.hardware.topology import ibmq16_topology


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def tables(cal):
    return ReliabilityTables(cal)


class TestRouteCost:
    def test_adjacent_cnot(self, cal):
        cost = route_cost(cal, [0, 1])
        assert cost.n_swaps == 0
        assert cost.reliability == pytest.approx(cal.cnot_reliability(0, 1))
        assert cost.duration == pytest.approx(cal.cnot_duration(0, 1))

    def test_one_swap_path(self, cal):
        cost = route_cost(cal, [0, 1, 2])
        expected_rel = cal.swap_reliability(0, 1) * cal.cnot_reliability(1, 2)
        assert cost.n_swaps == 1
        assert cost.reliability == pytest.approx(expected_rel)
        expected_dur = 2 * cal.swap_duration(0, 1) + cal.cnot_duration(1, 2)
        assert cost.duration == pytest.approx(expected_dur)

    def test_round_trip_charges_swaps_twice(self, cal):
        cost = route_cost(cal, [0, 1, 2])
        assert cost.round_trip_reliability == pytest.approx(
            cal.swap_reliability(0, 1) ** 2 * cal.cnot_reliability(1, 2))

    def test_paper_footnote3_example(self):
        """0.9^3 swap x 0.9 CNOT = 0.656 overall (paper footnote 3)."""
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.1)
        cost = route_cost(cal, [0, 1, 2])
        assert cost.reliability == pytest.approx(0.9 ** 4)

    def test_non_adjacent_step_rejected(self, cal):
        with pytest.raises(TopologyError):
            route_cost(cal, [0, 2])

    def test_short_path_rejected(self, cal):
        with pytest.raises(TopologyError):
            route_cost(cal, [0])


class TestOneBendTables:
    def test_adjacent_pair_both_junctions_equal(self, tables, cal):
        a = tables.one_bend(0, 1, 0)
        assert a.path == (0, 1)

    def test_best_one_bend_picks_max_reliability(self, tables):
        best = tables.best_one_bend(0, 10)
        r0 = tables.one_bend(0, 10, 0).reliability
        r1 = tables.one_bend(0, 10, 1).reliability
        assert best.reliability == pytest.approx(max(r0, r1))

    def test_delta_picks_min_duration(self, tables):
        d0 = tables.one_bend(0, 10, 0).duration
        d1 = tables.one_bend(0, 10, 1).duration
        assert tables.delta(0, 10) == pytest.approx(min(d0, d1))

    def test_same_qubit_rejected(self, tables):
        with pytest.raises(TopologyError):
            tables.best_one_bend(3, 3)
        with pytest.raises(TopologyError):
            tables.delta(3, 3)

    def test_log_reliability_negative(self, tables):
        assert tables.log_reliability(0, 10) < 0.0

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_reliability_in_unit_interval(self, tables, a, b):
        if a == b:
            return
        cost = tables.best_one_bend(a, b)
        assert 0.0 < cost.reliability <= 1.0
        assert cost.round_trip_reliability <= cost.reliability + 1e-12


class TestBestPaths:
    def test_best_path_cost_consistent_with_route_cost(self, tables, cal):
        """The table's cost equals re-evaluating its own path."""
        for a, b in [(0, 10), (3, 12), (0, 15), (7, 8)]:
            cost = tables.best_path(a, b)
            recomputed = route_cost(cal, list(cost.path))
            assert cost.reliability == pytest.approx(recomputed.reliability)
            assert cost.duration == pytest.approx(recomputed.duration)

    def test_best_path_endpoints(self, tables):
        cost = tables.best_path(0, 15)
        assert cost.path[0] == 0 and cost.path[-1] == 15

    def test_best_path_adjacent_is_direct(self, tables, cal):
        # With uniform data the direct edge is optimal; with real data a
        # detour could beat a terrible edge, so check with uniform.
        uni = ReliabilityTables(uniform_calibration(ibmq16_topology()))
        assert uni.best_path(0, 1).path == (0, 1)

    def test_uniform_duration_formula(self, tables):
        # distance 3 -> 2*(3-1) swaps * 3tau + tau = 12tau + tau
        assert tables.uniform_duration(0, 3, tau_cnot=3.0) == \
            pytest.approx(2 * 2 * 9.0 + 3.0)

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_best_path_symmetric_under_uniform_errors(self, a, b):
        """With identical edges the cost model is direction-symmetric."""
        if a == b:
            return
        uni = ReliabilityTables(uniform_calibration(ibmq16_topology()))
        fwd = uni.best_path(a, b)
        rev = uni.best_path(b, a)
        assert fwd.reliability == pytest.approx(rev.reliability)
        assert fwd.duration == pytest.approx(rev.duration)

    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_best_path_valid_chain(self, tables, cal, a, b):
        """Best paths are simple chains of coupling edges."""
        if a == b:
            return
        path = tables.best_path(a, b).path
        assert len(set(path)) == len(path)
        for u, v in zip(path, path[1:]):
            assert cal.topology.is_adjacent(u, v)
