"""Tests for the per-figure experiment harnesses (small configurations)."""

import pytest

from repro.experiments import (
    geometric_mean,
    format_table,
    run_fig1,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table2,
)


class TestCommon:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.125" in text


class TestFig1:
    def test_series_shapes(self):
        result = run_fig1(days=5)
        assert result.days == 5
        for series in result.t2_series.values():
            assert len(series) == 5
        for series in result.cnot_series.values():
            assert len(series) == 5

    def test_variation_is_meaningful(self):
        result = run_fig1(days=15)
        assert result.t2_variation > 2.0
        assert result.cnot_variation > 2.0
        assert result.readout_variation > 1.5

    def test_to_text_renders(self):
        assert "T2 Q0" in run_fig1(days=3).to_text()


class TestTable2:
    def test_all_rows_present(self):
        result = run_table2()
        assert len(result.rows) == 12
        assert "BV4" in result.to_text()

    def test_counts_within_decomposition_tolerance(self):
        for row in run_table2().rows:
            assert row.qubits == row.paper_qubits
            assert abs(row.gates - row.paper_gates) <= 8
            assert abs(row.cnots - row.paper_cnots) <= 3


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(trials=192, subset=["BV4", "HS4", "Toffoli"])

    def test_structure(self, result):
        assert set(result.runs) == {"BV4", "HS4", "Toffoli"}
        assert result.variants == ["qiskit", "t-smt*", "r-smt*"]

    def test_r_smt_beats_qiskit(self, result):
        for bench in result.runs:
            assert result.success(bench, "r-smt*") >= \
                result.success(bench, "qiskit") - 0.05

    def test_improvement_accessors(self, result):
        ratios = result.improvement_over("qiskit", "r-smt*")
        assert set(ratios) == set(result.runs)
        assert result.geomean_improvement("qiskit", "r-smt*") > 0.9

    def test_to_text(self, result):
        assert "geomean" in result.to_text()


class TestFig6:
    def test_weekly_series(self):
        result = run_fig6(days=2, trials=128, benchmarks=("BV4",))
        assert result.days == 2
        assert len(result.success["BV4"]["r-smt*"]) == 2
        assert 0 <= result.days_r_beats_t("BV4") <= 2
        assert "day0" in result.to_text()


class TestFig7:
    def test_omega_sweep(self):
        result = run_fig7(trials=128, benchmarks=("BV4",),
                          omegas=(0.0, 0.5))
        assert set(result.labels) == {"t-smt*", "r-smt*(w=0)",
                                      "r-smt*(w=0.5)"}
        for label in result.labels:
            assert 0 <= result.success("BV4", label) <= 1
            assert result.duration("BV4", label) > 0
            assert result.compile_time("BV4", label) < 60
        assert "success rate" in result.to_text()


class TestFig8:
    def test_mappings(self):
        result = run_fig8()
        assert set(result.compiled) == {"qiskit", "t-smt*", "r-smt*(w=1)",
                                        "r-smt*(w=0.5)"}
        art = result.grid_art("qiskit")
        assert "[p0]" in art
        assert result.compiled["qiskit"].swap_count > 0
        assert result.compiled["r-smt*(w=0.5)"].swap_count == 0
        assert "est.reliability" in result.to_text()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(subset=["BV4", "Toffoli", "QFT"])

    def test_labels(self, result):
        assert result.labels == ["t-smt(rr)", "t-smt*(rr)", "t-smt*(1bp)",
                                 "r-smt*(1bp)"]

    def test_calibrated_durations_never_worse(self, result):
        for bench in result.runs:
            assert result.duration(bench, "t-smt*(rr)") <= \
                result.duration(bench, "t-smt(rr)") + 1e-9

    def test_r_smt_duration_near_optimal(self, result):
        """Paper: R-SMT* duration is close to T-SMT*'s optimum."""
        for bench in result.runs:
            assert result.duration(bench, "r-smt*(1bp)") <= \
                1.5 * result.duration(bench, "t-smt*(1bp)")

    def test_to_text(self, result):
        assert "geomean" in result.to_text()


class TestFig10:
    def test_heuristics_close_to_optimal(self):
        result = run_fig10(trials=192, subset=["BV4", "HS4"])
        for bench in result.runs:
            ratio = (result.success(bench, "greedye*")
                     / max(result.success(bench, "r-smt*"), 1e-9))
            assert ratio > 0.7
        assert result.geomean_ratio("greedye*") > 0.7


class TestFig11:
    def test_scaling_trend(self):
        result = run_fig11(smt_qubits=(4,), greedy_qubits=(4, 16),
                           gate_counts=(64, 128), smt_time_cap=5.0)
        greedy_times = [p.compile_time for p in result.points
                        if p.variant == "greedye*"]
        assert all(t < 1.0 for t in greedy_times)
        smt_times = [p.compile_time for p in result.points
                     if p.variant == "r-smt*"]
        assert smt_times  # R-SMT* samples recorded
        assert "greedye*" in result.to_text()

    def test_series_accessor(self):
        result = run_fig11(smt_qubits=(), greedy_qubits=(4,),
                           gate_counts=(64, 128))
        series = result.series("greedye*", 4)
        assert [g for g, _ in series] == [64, 128]
