"""Unit tests for repro.ir.circuit."""

import pytest

from repro.exceptions import CircuitError
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate


def small_circuit():
    c = Circuit(3, name="test")
    c.h(0).cx(0, 1).cx(1, 2).t(2).measure_all()
    return c


class TestConstruction:
    def test_default_cbits_match_qubits(self):
        assert Circuit(4).n_cbits == 4

    def test_explicit_cbits(self):
        assert Circuit(4, 2).n_cbits == 2

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_negative_cbits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2, -1)

    def test_builder_chaining(self):
        c = Circuit(2).h(0).cx(0, 1).measure(0).measure(1)
        assert len(c) == 4

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).h(2)

    def test_out_of_range_cbit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2, 1).measure(1, cbit=1)

    def test_measure_all_requires_room(self):
        with pytest.raises(CircuitError):
            Circuit(3, 2).measure_all()

    def test_barrier_defaults_to_all_qubits(self):
        c = Circuit(3).barrier()
        assert c[0].qubits == (0, 1, 2)

    def test_equality(self):
        assert small_circuit() == small_circuit()
        other = small_circuit()
        other.x(0)
        assert small_circuit() != other


class TestStatistics:
    def test_count_ops(self):
        counts = small_circuit().count_ops()
        assert counts["cx"] == 2
        assert counts["measure"] == 3

    def test_gate_count_excludes_barriers(self):
        c = Circuit(2).h(0).barrier().x(1)
        assert c.gate_count() == 2
        assert c.gate_count(include_barriers=True) == 3

    def test_cnot_count(self):
        assert small_circuit().cnot_count() == 2

    def test_used_qubits(self):
        c = Circuit(5).h(1).cx(1, 3)
        assert c.used_qubits() == [1, 3]

    def test_interaction_graph_weights(self):
        c = Circuit(3).cx(0, 1).cx(1, 0).cx(1, 2)
        graph = c.interaction_graph()
        assert graph == {(0, 1): 2, (1, 2): 1}

    def test_qubit_degrees(self):
        c = Circuit(3).cx(0, 1).cx(1, 2)
        assert c.qubit_degrees() == {0: 1, 1: 2, 2: 1}

    def test_depth_linear_chain(self):
        c = Circuit(2).h(0).h(0).h(0)
        assert c.depth() == 3

    def test_depth_parallel_gates(self):
        c = Circuit(2).h(0).h(1)
        assert c.depth() == 1

    def test_depth_with_cnot(self):
        c = Circuit(2).h(0).cx(0, 1).x(1)
        assert c.depth() == 3


class TestTransformations:
    def test_copy_is_independent(self):
        a = small_circuit()
        b = a.copy()
        b.x(0)
        assert len(b) == len(a) + 1

    def test_inverse_reverses_and_inverts(self):
        c = Circuit(2).h(0).s(0).cx(0, 1)
        inv = c.inverse()
        names = [g.name for g in inv]
        assert names == ["cx", "sdg", "h"]

    def test_inverse_rejects_measure(self):
        with pytest.raises(CircuitError):
            Circuit(1).measure(0).inverse()

    def test_without_measurements(self):
        c = small_circuit().without_measurements()
        assert all(not g.is_measure for g in c)
        assert c.cnot_count() == 2

    def test_remap_qubits(self):
        c = Circuit(2).cx(0, 1).remap_qubits({0: 4, 1: 2}, n_qubits=6)
        assert c[0].qubits == (4, 2)
        assert c.n_qubits == 6

    def test_roundtrip_unitary_identity(self):
        """circuit + inverse = identity on the statevector."""
        from repro.simulator import StateVector

        c = Circuit(2).h(0).t(0).cx(0, 1).s(1)
        full = c.copy()
        full.extend(c.inverse().gates)
        state = StateVector(2)
        for g in full:
            state.apply_gate(g.name, g.qubits, param=g.param)
        probs = state.probabilities()
        assert probs[0] == pytest.approx(1.0, abs=1e-9)
