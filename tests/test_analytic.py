"""Tests for the analytic success predictor vs the Monte-Carlo executor."""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.hardware import (
    ReliabilityTables,
    default_ibmq16_calibration,
    ibmq16_topology,
    uniform_calibration,
)
from repro.programs import build_benchmark, expected_output
from repro.simulator import NoiseModel, execute, ideal_noise_model
from repro.simulator.analytic import estimate_success_analytic


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


class TestAnalyticEstimate:
    def test_noise_free_predicts_one(self, cal):
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star())
        est = estimate_success_analytic(program, cal,
                                        noise_model=ideal_noise_model(cal))
        assert est.success == pytest.approx(1.0)

    def test_factorization(self, cal):
        program = compile_circuit(build_benchmark("Toffoli"), cal,
                                  CompilerOptions.r_smt_star())
        est = estimate_success_analytic(program, cal)
        assert est.success == pytest.approx(
            est.gate_factor * est.decoherence_factor * est.readout_factor)
        assert 0 < est.gate_factor <= 1
        assert 0 < est.decoherence_factor <= 1
        assert 0 < est.readout_factor <= 1

    def test_readout_only_exact(self):
        """With only readout errors the analytic model is exact."""
        uni = uniform_calibration(ibmq16_topology(), readout_error=0.1,
                                  cnot_error=0.0, single_qubit_error=0.0)
        program = compile_circuit(build_benchmark("BV4"), uni,
                                  CompilerOptions.r_smt_star())
        noise = NoiseModel(uni, gate_errors=False, decoherence=False)
        est = estimate_success_analytic(program, uni, noise_model=noise)
        assert est.success == pytest.approx(0.9 ** 3)

    @pytest.mark.parametrize("bench", ["BV4", "HS4", "Toffoli", "Adder"])
    def test_tracks_monte_carlo(self, cal, bench):
        """The analytic estimate lands within a few points of the
        executor (it ignores error cancellation and unreachable
        errors, so allow a modest band)."""
        program = compile_circuit(build_benchmark(bench), cal,
                                  CompilerOptions.r_smt_star())
        est = estimate_success_analytic(program, cal)
        result = execute(program, cal, trials=2048, seed=5,
                         expected=expected_output(bench))
        assert est.success == pytest.approx(result.success_rate, abs=0.10)

    def test_ranks_mappings_like_the_executor(self, cal):
        """A bad (Qiskit) mapping must score below a good (R-SMT*) one."""
        circuit = build_benchmark("BV8")
        good = compile_circuit(circuit, cal, CompilerOptions.r_smt_star())
        bad = compile_circuit(circuit, cal, CompilerOptions.qiskit())
        assert estimate_success_analytic(good, cal).success > \
            estimate_success_analytic(bad, cal).success
