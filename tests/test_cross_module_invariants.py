"""Cross-module invariants tying the optimizer, estimator and executor
together — the consistency arguments the paper's methodology rests on.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CompilerOptions,
    TimeSmtMapper,
    compile_circuit,
    estimate_reliability,
    weighted_log_reliability,
)
from repro.hardware import (
    CalibrationGenerator,
    GridTopology,
    ReliabilityTables,
    default_ibmq16_calibration,
)
from repro.ir.circuit import Circuit
from repro.programs import build_benchmark, expected_output
from repro.simulator import execute
from repro.simulator.analytic import estimate_success_analytic


class TestObjectiveMatchesEstimator:
    """The R-SMT* solver objective and the post-compile reliability
    estimator must agree: the solver maximizes exactly what the
    estimator reports (modulo the junction re-selection at scheduling,
    which can only improve reliability)."""

    @pytest.mark.parametrize("omega", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("bench", ["BV4", "Toffoli"])
    def test_solver_objective_close_to_estimate(self, omega, bench):
        cal = default_ibmq16_calibration()
        program = compile_circuit(
            build_benchmark(bench), cal,
            CompilerOptions.r_smt_star(omega=omega))
        solver_value = program.mapping.objective
        estimate_value = weighted_log_reliability(program.reliability,
                                                  omega)
        # Scheduling may pick a (weakly) better junction than the
        # solver's table assumed, so estimate >= solver objective.
        assert estimate_value >= solver_value - 1e-6


class TestTimeSmtIsOptimal:
    """T-SMT's returned makespan equals brute force on tiny machines."""

    def test_matches_brute_force_enumeration(self):
        from repro.compiler.scheduling.list_scheduler import makespan_of

        topo = GridTopology(3, 2)
        cal = CalibrationGenerator(topo, seed=9).snapshot(0)
        tables = ReliabilityTables(cal)
        circuit = Circuit(3, 3).h(0).cx(0, 1).cx(1, 2).measure_all()
        options = CompilerOptions.t_smt_star()
        mapper = TimeSmtMapper(options)
        result = mapper.run(circuit, cal, tables)
        assert result.optimal

        best = min(
            makespan_of(circuit, dict(zip(range(3), perm)), cal, tables,
                        options)
            for perm in itertools.permutations(range(6), 3))
        achieved = makespan_of(circuit, result.placement, cal, tables,
                               options)
        assert achieved == pytest.approx(best)


class TestEstimatorTracksExecutor:
    """The paper argues the reliability score is a useful proxy for
    measured success. Check the correlation across mappings."""

    def test_ranking_preserved_across_variants(self):
        cal = default_ibmq16_calibration()
        circuit = build_benchmark("HS6")
        pairs = []
        for options in (CompilerOptions.qiskit(),
                        CompilerOptions.t_smt_star(routing="1bp"),
                        CompilerOptions.r_smt_star()):
            program = compile_circuit(circuit, cal, options)
            measured = execute(program, cal, trials=1024, seed=13,
                               expected=expected_output("HS6")).success_rate
            pairs.append((program.estimated_success, measured))
        # Sort by estimate; measured must be (weakly) sorted too,
        # allowing simulation noise.
        pairs.sort()
        for (e1, m1), (e2, m2) in zip(pairs, pairs[1:]):
            assert m2 >= m1 - 0.07, pairs

    @given(day=st.integers(0, 6))
    @settings(max_examples=7, deadline=None)
    def test_analytic_vs_paper_estimate_bracket_measurement(self, day):
        """Paper-score (no decoherence term) and the analytic estimate
        (with decoherence) should both land near the executor."""
        from repro.hardware import CalibrationGenerator, ibmq16_topology
        cal = CalibrationGenerator(ibmq16_topology(), seed=2019) \
            .snapshot(day)
        program = compile_circuit(build_benchmark("BV4"), cal,
                                  CompilerOptions.r_smt_star())
        analytic = estimate_success_analytic(program, cal).success
        measured = execute(program, cal, trials=1024, seed=day,
                           expected=expected_output("BV4")).success_rate
        assert analytic == pytest.approx(measured, abs=0.12)


class TestScheduleConsistency:
    def test_estimated_duration_close_to_physical(self):
        """Logical-schedule makespan (paper's duration metric) and the
        physical ASAP duration agree when durations are calibrated."""
        cal = default_ibmq16_calibration()
        for bench in ("BV4", "HS6", "Toffoli", "Adder"):
            program = compile_circuit(build_benchmark(bench), cal,
                                      CompilerOptions.r_smt_star())
            logical = program.duration
            physical = program.physical.duration
            assert physical <= logical * 1.25 + 5.0, bench
            assert logical <= physical * 1.6 + 5.0, bench

    def test_swap_counts_agree_between_schedule_and_physical(self):
        cal = default_ibmq16_calibration()
        for bench in ("BV4", "Toffoli", "Fredkin"):
            program = compile_circuit(build_benchmark(bench), cal,
                                      CompilerOptions.qiskit())
            # Physical movement CNOTs = 6 per one-way SWAP (there and
            # back at 3 CNOTs each).
            assert program.physical.swap_cnots == 6 * program.swap_count
