"""Tests for the branch-and-bound constraint solver (the Z3 substitute)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.solver import (
    AllDifferent,
    BinaryPredicate,
    BranchAndBoundSolver,
    CallableObjective,
    LinearLE,
    Model,
    PairTerm,
    SumObjective,
    TableConstraint,
    UnaryPredicate,
    UnaryTerm,
    Variable,
)


class TestModel:
    def test_duplicate_variable_rejected(self):
        m = Model()
        m.add_variable("x", [0, 1])
        with pytest.raises(SolverError):
            m.add_variable("x", [0, 1])

    def test_empty_domain_rejected(self):
        with pytest.raises(SolverError):
            Variable("x", ())

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(SolverError):
            Variable("x", (1, 1))

    def test_constraint_scope_checked(self):
        m = Model()
        m.add_variable("x", [0, 1])
        with pytest.raises(SolverError):
            m.add_constraint(AllDifferent(["x", "y"]))

    def test_validate(self):
        m = Model()
        m.add_variable("x", [0, 1])
        m.add_variable("y", [0, 1])
        m.add_constraint(AllDifferent(["x", "y"]))
        assert m.validate({"x": 0, "y": 1})
        assert not m.validate({"x": 0, "y": 0})
        assert not m.validate({"x": 0})
        assert not m.validate({"x": 5, "y": 1})


class TestSatisfaction:
    def test_all_different_feasible(self):
        m = Model()
        for name in "abc":
            m.add_variable(name, [0, 1, 2])
        m.add_constraint(AllDifferent(["a", "b", "c"]))
        result = BranchAndBoundSolver(first_solution_only=True).solve(m)
        assert result.feasible
        values = [result.assignment[n] for n in "abc"]
        assert sorted(values) == [0, 1, 2]

    def test_all_different_infeasible(self):
        m = Model()
        for name in "abc":
            m.add_variable(name, [0, 1])
        m.add_constraint(AllDifferent(["a", "b", "c"]))
        result = BranchAndBoundSolver().solve(m)
        assert not result.feasible
        assert result.optimal  # exhausted => infeasibility proof

    def test_binary_predicate(self):
        m = Model()
        m.add_variable("x", [0, 1, 2])
        m.add_variable("y", [0, 1, 2])
        m.add_constraint(BinaryPredicate("x", "y", lambda a, b: a < b))
        result = BranchAndBoundSolver(first_solution_only=True).solve(m)
        assert result.assignment["x"] < result.assignment["y"]

    def test_unary_predicate(self):
        m = Model()
        m.add_variable("x", [0, 1, 2, 3])
        m.add_constraint(UnaryPredicate("x", lambda v: v % 2 == 1))
        result = BranchAndBoundSolver(first_solution_only=True).solve(m)
        assert result.assignment["x"] % 2 == 1

    def test_table_constraint(self):
        m = Model()
        m.add_variable("x", [0, 1])
        m.add_variable("y", [0, 1])
        m.add_constraint(TableConstraint(["x", "y"], [(0, 1)]))
        result = BranchAndBoundSolver().solve(m)
        assert result.assignment == {"x": 0, "y": 1}

    def test_linear_le(self):
        m = Model()
        m.add_variable("x", [0, 1, 2, 3])
        m.add_variable("y", [0, 1, 2, 3])
        m.add_constraint(LinearLE(["x", "y"], [1.0, 1.0], 1.0))
        m.objective = SumObjective([UnaryTerm("x", float),
                                    UnaryTerm("y", float)])
        result = BranchAndBoundSolver().solve(m)
        assert result.objective == pytest.approx(1.0)

    def test_no_variables_rejected(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver().solve(Model())


class TestOptimization:
    def test_unary_maximization(self):
        m = Model()
        m.add_variable("x", [0, 5, 3])
        m.objective = SumObjective([UnaryTerm("x", float)])
        result = BranchAndBoundSolver().solve(m)
        assert result.assignment["x"] == 5
        assert result.optimal

    def test_pair_term_assignment_problem(self):
        """3-qubit toy mapping: maximize pair scores, all-different."""
        score = {(0, 1): 5.0, (1, 0): 5.0, (1, 2): 4.0, (2, 1): 4.0}
        m = Model()
        for name in "ab":
            m.add_variable(name, [0, 1, 2])
        m.add_constraint(AllDifferent(["a", "b"]))
        m.objective = SumObjective(
            [PairTerm("a", "b", lambda x, y: score.get((x, y), 0.0))])
        result = BranchAndBoundSolver().solve(m)
        assert result.objective == pytest.approx(5.0)

    def test_matches_brute_force(self):
        """Exactness check against exhaustive enumeration."""
        def score_a(v):
            return [3.0, 1.0, 4.0, 1.0][v]

        def score_pair(x, y):
            return ((x * 7 + y * 3) % 5) * 1.0

        m = Model()
        m.add_variable("a", [0, 1, 2, 3])
        m.add_variable("b", [0, 1, 2, 3])
        m.add_variable("c", [0, 1, 2, 3])
        m.add_constraint(AllDifferent(["a", "b", "c"]))
        m.objective = SumObjective([
            UnaryTerm("a", score_a),
            PairTerm("b", "c", score_pair),
        ])
        result = BranchAndBoundSolver().solve(m)

        best = -1e9
        for a, b, c in itertools.permutations(range(4), 3):
            best = max(best, score_a(a) + score_pair(b, c))
        assert result.objective == pytest.approx(best)
        assert result.optimal

    def test_warm_start_used_as_incumbent(self):
        m = Model()
        m.add_variable("x", [0, 1, 2])
        m.objective = SumObjective([UnaryTerm("x", float)])
        result = BranchAndBoundSolver().solve(m, initial={"x": 1})
        assert result.objective == pytest.approx(2.0)

    def test_infeasible_warm_start_ignored(self):
        m = Model()
        m.add_variable("x", [0, 1])
        m.add_variable("y", [0, 1])
        m.add_constraint(AllDifferent(["x", "y"]))
        m.objective = SumObjective([UnaryTerm("x", float)])
        result = BranchAndBoundSolver().solve(m, initial={"x": 0, "y": 0})
        assert result.feasible

    def test_callable_objective_without_bound(self):
        m = Model()
        m.add_variable("x", [0, 1, 2, 3])
        m.objective = CallableObjective(lambda a: -abs(a["x"] - 2))
        result = BranchAndBoundSolver().solve(m)
        assert result.assignment["x"] == 2

    def test_node_limit_truncates(self):
        m = Model()
        for i in range(6):
            m.add_variable(f"v{i}", list(range(6)))
        m.add_constraint(AllDifferent([f"v{i}" for i in range(6)]))
        m.objective = SumObjective(
            [UnaryTerm(f"v{i}", lambda v: float(v)) for i in range(6)])
        result = BranchAndBoundSolver(node_limit=10).solve(m)
        assert not result.optimal

    def test_time_limit_respected(self):
        m = Model()
        for i in range(8):
            m.add_variable(f"v{i}", list(range(8)))
        m.add_constraint(AllDifferent([f"v{i}" for i in range(8)]))
        m.objective = CallableObjective(
            lambda a: -sum(a.values()) * 1.0)  # no bound -> exhaustive
        result = BranchAndBoundSolver(time_limit=0.2).solve(m)
        assert result.timed_out
        assert result.elapsed < 5.0

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_random_assignment_problems_are_solved_exactly(self, seed):
        """Property: B&B equals brute force on random 3x5 QAPs."""
        import random
        rng = random.Random(seed)
        unary = [[rng.uniform(0, 10) for _ in range(5)] for _ in range(3)]
        pair = {(i, j): rng.uniform(0, 10)
                for i in range(5) for j in range(5) if i != j}

        m = Model()
        for i in range(3):
            m.add_variable(f"q{i}", range(5))
        m.add_constraint(AllDifferent([f"q{i}" for i in range(3)]))
        terms = [UnaryTerm(f"q{i}", lambda v, i=i: unary[i][v])
                 for i in range(3)]
        terms.append(PairTerm("q0", "q1", lambda a, b: pair[(a, b)]))
        terms.append(PairTerm("q1", "q2", lambda a, b: pair[(a, b)]))
        m.objective = SumObjective(terms)
        result = BranchAndBoundSolver().solve(m)

        best = max(
            (unary[0][a] + unary[1][b] + unary[2][c]
             + pair[(a, b)] + pair[(b, c)])
            for a, b, c in itertools.permutations(range(5), 3))
        assert result.objective == pytest.approx(best)
