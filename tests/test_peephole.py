"""Tests for the peephole cancellation pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CompilerOptions,
    cancel_adjacent_inverses,
    compile_circuit,
    count_cancellations,
    verify_compiled,
)
from repro.hardware import default_ibmq16_calibration
from repro.ir.circuit import Circuit
from repro.programs import build_benchmark, random_circuit
from repro.simulator import StateVector


def statevector_of(circuit: Circuit) -> np.ndarray:
    state = StateVector(circuit.n_qubits)
    for g in circuit.gates:
        if g.is_unitary and g.name != "barrier":
            state.apply_gate(g.name, g.qubits, param=g.param)
    return state.amplitudes.reshape(-1)


class TestCancellation:
    def test_hh_cancels(self):
        c = Circuit(1).h(0).h(0)
        assert len(cancel_adjacent_inverses(c)) == 0

    def test_cx_pair_cancels(self):
        c = Circuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_inverses(c)) == 0

    def test_cx_reversed_does_not_cancel(self):
        c = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_inverses(c)) == 2

    def test_s_sdg_cancels(self):
        c = Circuit(1).s(0).sdg(0).tdg(0).t(0)
        assert len(cancel_adjacent_inverses(c)) == 0

    def test_rotation_pair_cancels(self):
        c = Circuit(1).rz(0.7, 0).rz(-0.7, 0)
        assert len(cancel_adjacent_inverses(c)) == 0

    def test_zero_rotation_removed(self):
        c = Circuit(1).rz(0.0, 0).x(0)
        out = cancel_adjacent_inverses(c)
        assert [g.name for g in out] == ["x"]

    def test_disjoint_gate_does_not_block(self):
        c = Circuit(2).h(0).x(1).h(0)
        out = cancel_adjacent_inverses(c)
        assert [g.name for g in out] == ["x"]

    def test_intervening_gate_blocks(self):
        c = Circuit(1).h(0).x(0).h(0)
        assert len(cancel_adjacent_inverses(c)) == 3

    def test_measure_blocks(self):
        c = Circuit(1, 1).h(0).measure(0).h(0)
        assert len(cancel_adjacent_inverses(c)) == 3

    def test_cascading_cancellation(self):
        c = Circuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_inverses(c)) == 0

    def test_partial_overlap_blocks(self):
        """cx(0,1) h(1) cx(0,1): the h blocks, nothing cancels."""
        c = Circuit(2).cx(0, 1).h(1).cx(0, 1)
        assert len(cancel_adjacent_inverses(c)) == 3

    def test_count_cancellations(self):
        before = Circuit(1).h(0).h(0).x(0)
        after = cancel_adjacent_inverses(before)
        assert count_cancellations(before, after) == 2

    @given(seed=st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_pass_preserves_unitary_action(self, seed):
        """Property: the optimized circuit implements the same state."""
        circuit = random_circuit(3, 25, seed=seed, measure=False)
        optimized = cancel_adjacent_inverses(circuit)
        assert len(optimized) <= len(circuit)
        original = statevector_of(circuit)
        reduced = statevector_of(
            optimized if len(optimized) else Circuit(3))
        # Equal up to global phase.
        overlap = abs(np.vdot(original, reduced))
        assert overlap == pytest.approx(1.0, abs=1e-9)


class TestPeepholeInPipeline:
    def test_option_reduces_movement_cnots(self):
        """Consecutive routed CNOTs over the same route leave a
        swap-back immediately followed by the identical swap-forward;
        the peephole pass removes both."""
        cal = default_ibmq16_calibration()
        circuit = Circuit(4, 4, name="repeat")
        circuit.cx(0, 3)
        circuit.t(3)       # on the target; does not block the swaps
        circuit.cx(0, 3)
        circuit.measure_all()
        plain = compile_circuit(circuit, cal, CompilerOptions.qiskit())
        tidy = compile_circuit(circuit, cal,
                               CompilerOptions.qiskit().with_(peephole=True))
        # Trivial placement puts the pair at distance 3: 2 swaps each
        # way per CNOT; the back-to-back trios (12 CNOTs) cancel.
        assert plain.physical.circuit.cnot_count() \
            - tidy.physical.circuit.cnot_count() == 12
        assert tidy.physical.duration < plain.physical.duration

    def test_peephole_preserves_semantics(self):
        cal = default_ibmq16_calibration()
        for bench in ("BV4", "Toffoli", "Adder"):
            program = compile_circuit(
                build_benchmark(bench), cal,
                CompilerOptions.qiskit().with_(peephole=True))
            report = verify_compiled(program, cal)
            assert report.ok, (bench, report.errors)
