"""Tests for routing policies and the list scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, Router, schedule_circuit
from repro.compiler.scheduling.list_scheduler import gate_durations
from repro.exceptions import CompilationError, SchedulingError
from repro.hardware import (
    READOUT_SLOTS,
    SINGLE_QUBIT_SLOTS,
    ReliabilityTables,
    default_ibmq16_calibration,
    ibmq16_topology,
    uniform_calibration,
)
from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.programs import build_benchmark, random_circuit


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


@pytest.fixture(scope="module")
def tables(cal):
    return ReliabilityTables(cal)


class TestRouter:
    def test_one_bend_reserves_path(self, tables):
        router = Router(tables, "1bp", prefer="reliability")
        route = router.route(0, 10)
        assert set(route.reserved) == set(route.path)
        assert route.path[0] == 0 and route.path[-1] == 10

    def test_rectangle_reserves_bounding_box(self, tables):
        router = Router(tables, "rr", prefer="duration")
        route = router.route(0, 10)
        assert set(route.reserved) == {0, 1, 2, 8, 9, 10}

    def test_best_path_policy(self, tables):
        router = Router(tables, "best", prefer="reliability")
        route = router.route(0, 15)
        assert route.path[0] == 0 and route.path[-1] == 15

    def test_fixed_preference_is_deterministic_junction0(self, tables):
        router = Router(tables, "1bp", prefer="fixed")
        route = router.route(0, 10)
        assert route.path == tuple(
            tables.topology.one_bend_path(0, 10, 0))

    def test_same_qubit_rejected(self, tables):
        router = Router(tables, "1bp")
        with pytest.raises(CompilationError):
            router.route(3, 3)

    def test_unknown_policy_rejected(self, tables):
        with pytest.raises(CompilationError):
            Router(tables, "1bp", prefer="vibes")

    def test_reliability_preference_picks_better_junction(self, tables):
        router = Router(tables, "1bp", prefer="reliability")
        route = router.route(0, 10)
        r0 = tables.one_bend(0, 10, 0).reliability
        r1 = tables.one_bend(0, 10, 1).reliability
        assert route.reliability == pytest.approx(max(r0, r1))


class TestGateDurations:
    def test_single_qubit_and_readout_durations(self, cal, tables):
        circuit = Circuit(2, 2).h(0).measure(0)
        placement = {0: 0, 1: 1}
        router = Router(tables, "1bp")
        per_gate = gate_durations(circuit, placement, router, cal)
        assert per_gate[0][0] == SINGLE_QUBIT_SLOTS
        assert per_gate[1][0] == READOUT_SLOTS

    def test_uniform_cnot_duration_formula(self, cal, tables):
        circuit = Circuit(2).cx(0, 1)
        placement = {0: 0, 1: 3}  # distance 3
        router = Router(tables, "1bp", prefer="fixed")
        per_gate = gate_durations(circuit, placement, router, cal,
                                  uniform_cnot_slots=3.0)
        assert per_gate[0][0] == pytest.approx(2 * 2 * 9.0 + 3.0)


class TestListScheduler:
    def schedule(self, circuit, placement, cal, tables, options=None):
        return schedule_circuit(circuit, placement, cal, tables,
                                options or CompilerOptions.r_smt_star())

    def test_dependencies_respected(self, cal, tables):
        circuit = build_benchmark("BV4")
        placement = {0: 1, 1: 9, 2: 11, 3: 10}
        schedule = self.schedule(circuit, placement, cal, tables)
        dag = DependencyDAG.from_circuit(circuit)
        finish = {g.index: g.finish for g in schedule.gates}
        start = {g.index: g.start for g in schedule.gates}
        for i, preds in enumerate(dag.preds):
            for p in preds:
                assert start[i] >= finish[p] - 1e-9

    def test_no_spatial_overlap(self, cal, tables):
        """Gates reserving a common qubit never overlap in time."""
        circuit = build_benchmark("HS6")
        placement = {q: q for q in range(6)}
        schedule = self.schedule(circuit, placement, cal, tables)
        for a in schedule.gates:
            for b in schedule.gates:
                if a.index >= b.index:
                    continue
                if set(a.hw_qubits) & set(b.hw_qubits):
                    assert (a.finish <= b.start + 1e-9
                            or b.finish <= a.start + 1e-9)

    def test_makespan_is_last_finish(self, cal, tables):
        circuit = build_benchmark("Toffoli")
        placement = {0: 0, 1: 1, 2: 2}
        schedule = self.schedule(circuit, placement, cal, tables)
        assert schedule.makespan == pytest.approx(
            max(g.finish for g in schedule.gates))

    def test_swap_count_zero_for_adjacent_placement(self, cal, tables):
        circuit = Circuit(2).cx(0, 1)
        schedule = self.schedule(circuit, {0: 0, 1: 1}, cal, tables)
        assert schedule.swap_count() == 0

    def test_swap_count_for_distant_placement(self, cal, tables):
        circuit = Circuit(2).cx(0, 1)
        schedule = self.schedule(circuit, {0: 0, 1: 7}, cal, tables)
        assert schedule.swap_count() == 6  # distance 7 -> 6 one-way swaps

    def test_coherence_violation_detected(self, tables):
        """A very long program on a short-coherence machine violates the
        deadline; enforce_coherence turns that into an error."""
        topo = ibmq16_topology()
        cal = uniform_calibration(topo, t2_us=0.8)  # 10 slots only
        tbl = ReliabilityTables(cal)
        circuit = Circuit(2, 2)
        for _ in range(20):
            circuit.cx(0, 1)
        circuit.measure_all()
        options = CompilerOptions.r_smt_star()
        schedule = schedule_circuit(circuit, {0: 0, 1: 1}, cal, tbl, options)
        assert not schedule.coherence_ok
        with pytest.raises(SchedulingError):
            schedule_circuit(circuit, {0: 0, 1: 1}, cal, tbl,
                             options.with_(enforce_coherence=True))

    def test_noise_unaware_uses_static_bound(self, tables):
        """T-SMT checks the MT constant, not per-qubit coherence."""
        topo = ibmq16_topology()
        cal = uniform_calibration(topo, t2_us=0.8)
        tbl = ReliabilityTables(cal)
        circuit = Circuit(2, 2).cx(0, 1).measure_all()
        options = CompilerOptions.t_smt()  # MT = 1000 slots
        schedule = schedule_circuit(circuit, {0: 0, 1: 1}, cal, tbl, options)
        assert schedule.coherence_ok

    def test_parallel_cnots_overlap_when_disjoint(self, cal, tables):
        """Two CNOTs on disjoint regions run concurrently under 1BP."""
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        placement = {0: 0, 1: 1, 2: 4, 3: 5}
        schedule = self.schedule(circuit, placement, cal, tables)
        starts = {g.index: g.start for g in schedule.gates}
        assert starts[0] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(0.0)

    def test_rectangle_blocks_more_than_one_bend(self, cal, tables):
        """RR serializes CNOTs whose rectangles overlap even when their
        1BP paths would not."""
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        placement = {0: 0, 1: 10, 2: 2, 3: 8}  # crossing rectangles
        opts_rr = CompilerOptions.t_smt_star(routing="rr")
        opts_bp = CompilerOptions.t_smt_star(routing="1bp")
        rr = schedule_circuit(circuit, placement, cal, tables, opts_rr)
        bp = schedule_circuit(circuit, placement, cal, tables, opts_bp)
        rr_starts = sorted(g.start for g in rr.gates)
        assert rr_starts[1] > 0.0  # serialized
        assert bp.makespan <= rr.makespan + 1e-9

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_random_schedules_are_consistent(self, cal, tables, seed):
        circuit = random_circuit(5, 25, seed=seed)
        placement = {0: 0, 1: 1, 2: 9, 3: 10, 4: 2}
        schedule = schedule_circuit(circuit, placement, cal, tables,
                                    CompilerOptions.greedy_e())
        assert len(schedule.gates) == len(circuit.gates)
        assert all(g.start >= 0 for g in schedule.gates)
        assert schedule.makespan > 0
