"""Tests for the statevector engine, noise model, and executor."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import SimulationError
from repro.hardware import (
    ReliabilityTables,
    default_ibmq16_calibration,
    ibmq16_topology,
    uniform_calibration,
)
from repro.ir.circuit import Circuit
from repro.programs import build_benchmark, expected_output
from repro.simulator import (
    NoiseModel,
    StateVector,
    distribution_overlap,
    execute,
    empirical_distribution,
    ideal_noise_model,
    success_rate,
    total_variation_distance,
)


class TestStateVector:
    def test_initial_state(self):
        probs = StateVector(2).probabilities()
        assert probs[0] == pytest.approx(1.0)

    def test_x_flips(self):
        s = StateVector(2)
        s.apply_gate("x", (1,))
        assert s.probabilities()[1] == pytest.approx(1.0)  # |01> = index 1

    def test_bit_ordering_qubit0_is_msb(self):
        s = StateVector(2)
        s.apply_gate("x", (0,))
        assert s.probabilities()[2] == pytest.approx(1.0)  # |10> = index 2
        assert s.bits_of(2) == (1, 0)

    def test_h_uniform(self):
        s = StateVector(1)
        s.apply_gate("h", (0,))
        assert np.allclose(s.probabilities(), [0.5, 0.5])

    def test_bell_state(self):
        s = StateVector(2)
        s.apply_gate("h", (0,))
        s.apply_gate("cx", (0, 1))
        probs = s.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_cx_direction(self):
        s = StateVector(2)
        s.apply_gate("x", (1,))      # target=1 set; control=0 clear
        s.apply_gate("cx", (0, 1))   # no-op
        assert s.probabilities()[1] == pytest.approx(1.0)
        s = StateVector(2)
        s.apply_gate("x", (0,))
        s.apply_gate("cx", (0, 1))   # fires
        assert s.probabilities()[3] == pytest.approx(1.0)

    def test_swap_gate(self):
        s = StateVector(2)
        s.apply_gate("x", (0,))
        s.apply_gate("swap", (0, 1))
        assert s.probabilities()[1] == pytest.approx(1.0)

    def test_nonadjacent_qubits_2q_gate(self):
        s = StateVector(3)
        s.apply_gate("x", (0,))
        s.apply_gate("cx", (0, 2))
        assert s.probabilities()[0b101] == pytest.approx(1.0)

    def test_reversed_qubit_order_2q_gate(self):
        s = StateVector(2)
        s.apply_gate("x", (1,))
        s.apply_gate("cx", (1, 0))   # control is qubit 1
        assert s.probabilities()[3] == pytest.approx(1.0)

    def test_norm_preserved_random_gates(self):
        from repro.programs import random_circuit
        circuit = random_circuit(4, 60, seed=9, measure=False)
        s = StateVector(4)
        for g in circuit:
            s.apply_gate(g.name, g.qubits, param=g.param)
        assert s.probabilities().sum() == pytest.approx(1.0)

    def test_sampling_distribution(self):
        s = StateVector(1)
        s.apply_gate("h", (0,))
        rng = np.random.default_rng(0)
        ones = sum(s.sample(rng)[0] for _ in range(2000))
        assert 850 < ones < 1150

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(SimulationError):
            StateVector(2).apply_gate("x", (2,))

    def test_too_many_qubits_rejected(self):
        with pytest.raises(SimulationError):
            StateVector(30)

    def test_fidelity(self):
        a, b = StateVector(2), StateVector(2)
        assert a.fidelity_with(b) == pytest.approx(1.0)
        b.apply_gate("x", (0,))
        assert a.fidelity_with(b) == pytest.approx(0.0)


class TestNoiseModel:
    def test_gate_error_probabilities(self):
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.05,
                                  single_qubit_error=0.002)
        noise = NoiseModel(cal)
        from repro.ir.gates import Gate
        assert noise.gate_error_probability(Gate("cx", (0, 1))) == 0.05
        assert noise.gate_error_probability(Gate("h", (0,))) == 0.002
        assert noise.gate_error_probability(
            Gate("measure", (0,), cbit=0)) == 0.0

    def test_disabled_mechanisms(self):
        cal = uniform_calibration(ibmq16_topology())
        noise = ideal_noise_model(cal)
        from repro.ir.gates import Gate
        rng = np.random.default_rng(0)
        assert noise.gate_error_probability(Gate("cx", (0, 1))) == 0.0
        assert noise.idle_rates(0, 100.0).total == 0.0
        assert not any(noise.sample_readout_flip(0, rng)
                       for _ in range(100))

    def test_idle_rates_grow_with_time(self):
        cal = uniform_calibration(ibmq16_topology(), t2_us=50.0)
        noise = NoiseModel(cal)
        short = noise.idle_rates(0, 10.0).total
        long = noise.idle_rates(0, 1000.0).total
        assert 0 < short < long < 1.0

    def test_idle_rates_zero_for_zero_time(self):
        cal = uniform_calibration(ibmq16_topology())
        assert NoiseModel(cal).idle_rates(0, 0.0).total == 0.0

    def test_gate_error_sampling_rate(self):
        cal = uniform_calibration(ibmq16_topology(), cnot_error=0.5)
        noise = NoiseModel(cal)
        from repro.ir.gates import Gate
        rng = np.random.default_rng(1)
        hits = sum(bool(noise.sample_gate_error(Gate("cx", (0, 1)), rng))
                   for _ in range(2000))
        assert 900 < hits < 1100

    def test_readout_flip_rate(self):
        cal = uniform_calibration(ibmq16_topology(), readout_error=0.25)
        noise = NoiseModel(cal)
        rng = np.random.default_rng(2)
        flips = sum(noise.sample_readout_flip(0, rng) for _ in range(4000))
        assert 850 < flips < 1150


class TestSuccessMetrics:
    def test_success_rate(self):
        assert success_rate({"00": 60, "11": 40}, "00") == pytest.approx(0.6)

    def test_success_rate_missing_outcome(self):
        assert success_rate({"11": 10}, "00") == 0.0

    def test_empty_counts_rejected(self):
        with pytest.raises(SimulationError):
            success_rate({}, "0")

    def test_distribution_overlap_identical(self):
        p = {"0": 0.5, "1": 0.5}
        assert distribution_overlap(p, p) == pytest.approx(1.0)

    def test_distribution_overlap_disjoint(self):
        assert distribution_overlap({"0": 1.0}, {"1": 1.0}) == 0.0

    def test_tvd(self):
        assert total_variation_distance({"0": 1.0}, {"1": 1.0}) == 1.0
        assert total_variation_distance({"0": 0.5, "1": 0.5},
                                        {"0": 0.5, "1": 0.5}) == 0.0

    def test_empirical_distribution(self):
        dist = empirical_distribution({"0": 3, "1": 1})
        assert dist == {"0": 0.75, "1": 0.25}


class TestExecutor:
    @pytest.fixture(scope="class")
    def cal(self):
        return default_ibmq16_calibration()

    @pytest.fixture(scope="class")
    def program(self, cal):
        return compile_circuit(build_benchmark("BV4"), cal,
                               CompilerOptions.r_smt_star())

    def test_noise_free_execution_is_perfect(self, cal, program):
        result = execute(program, cal, trials=64, seed=0,
                         expected=expected_output("BV4"),
                         noise_model=ideal_noise_model(cal))
        assert result.success_rate == pytest.approx(1.0)

    def test_noisy_execution_degrades(self, cal, program):
        result = execute(program, cal, trials=512, seed=0,
                         expected=expected_output("BV4"))
        assert 0.3 < result.success_rate < 0.95

    def test_reproducible(self, cal, program):
        a = execute(program, cal, trials=128, seed=5,
                    expected=expected_output("BV4"))
        b = execute(program, cal, trials=128, seed=5,
                    expected=expected_output("BV4"))
        assert a.counts == b.counts

    def test_counts_sum_to_trials(self, cal, program):
        result = execute(program, cal, trials=200, seed=1,
                         expected=expected_output("BV4"))
        assert sum(result.counts.values()) == 200

    def test_overlap_close_to_success_for_deterministic(self, cal, program):
        result = execute(program, cal, trials=512, seed=0,
                         expected=expected_output("BV4"))
        assert result.overlap == pytest.approx(result.success_rate,
                                               abs=1e-9)

    def test_ideal_distribution_deterministic_benchmark(self, cal, program):
        result = execute(program, cal, trials=16, seed=0,
                         expected=expected_output("BV4"))
        assert result.ideal_distribution == \
            {expected_output("BV4"): pytest.approx(1.0)}

    def test_success_requires_expected(self, cal, program):
        result = execute(program, cal, trials=16, seed=0)
        with pytest.raises(SimulationError):
            _ = result.success_rate

    def test_zero_trials_rejected(self, cal, program):
        with pytest.raises(SimulationError):
            execute(program, cal, trials=0)

    def test_readout_only_noise_bounds_success(self, cal):
        """With only readout errors, success = prod(1 - readout_err)."""
        uni = uniform_calibration(ibmq16_topology(), readout_error=0.1,
                                  cnot_error=0.0, single_qubit_error=0.0)
        program = compile_circuit(build_benchmark("BV4"), uni,
                                  CompilerOptions.r_smt_star())
        noise = NoiseModel(uni, gate_errors=False, decoherence=False)
        result = execute(program, uni, trials=3000, seed=3,
                         expected=expected_output("BV4"),
                         noise_model=noise)
        assert result.success_rate == pytest.approx(0.9 ** 3, abs=0.03)

    def test_more_noise_means_less_success(self):
        results = []
        for err in (0.0, 0.05, 0.15):
            cal = uniform_calibration(ibmq16_topology(), cnot_error=err,
                                      readout_error=err)
            program = compile_circuit(build_benchmark("Toffoli"), cal,
                                      CompilerOptions.r_smt_star())
            r = execute(program, cal, trials=512, seed=4,
                        expected=expected_output("Toffoli"))
            results.append(r.success_rate)
        assert results[0] == pytest.approx(1.0, abs=0.05)
        assert results[0] > results[1] > results[2]
