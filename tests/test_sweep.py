"""Sweep-runtime tests: fingerprints, caches, parallel determinism."""

import pytest

from repro.compiler import CompilerOptions, compile_circuit
from repro.exceptions import ReproError
from repro.experiments import run_fig6
from repro.experiments.common import compile_and_run
from repro.hardware import (
    CalibrationGenerator,
    default_ibmq16_calibration,
    ibmq16_topology,
)
from repro.ir.circuit import Circuit
from repro.programs import get_benchmark
from repro.runtime import (
    CompileCache,
    SweepCell,
    TraceCache,
    compile_key,
    run_sweep,
)
from repro.simulator import NoiseModel, execute

TRIALS = 128


@pytest.fixture(scope="module")
def cal():
    return default_ibmq16_calibration()


def make_cells(cal, benchmarks=("BV4", "Toffoli"), seeds=(0, 1),
               variants=None, trials=TRIALS, simulate=True):
    variants = variants or [CompilerOptions.t_smt_star(routing="1bp"),
                            CompilerOptions.r_smt_star(omega=0.5)]
    cells = []
    for name in benchmarks:
        spec = get_benchmark(name)
        circuit = spec.build()
        for options in variants:
            for seed in seeds:
                cells.append(SweepCell(
                    circuit=circuit, calibration=cal, options=options,
                    expected=spec.expected_output, trials=trials,
                    seed=seed, simulate=simulate,
                    key=(name, options.variant, seed)))
    return cells


class TestFingerprints:
    def test_circuit_fingerprint_stable_across_builds(self):
        spec = get_benchmark("BV4")
        assert spec.build().fingerprint() == spec.build().fingerprint()

    def test_circuit_fingerprint_ignores_name(self):
        circuit = get_benchmark("BV4").build()
        assert circuit.copy(name="other").fingerprint() == \
            circuit.fingerprint()

    def test_circuit_fingerprint_distinguishes_content(self):
        bv4 = get_benchmark("BV4").build()
        bv6 = get_benchmark("BV6").build()
        assert bv4.fingerprint() != bv6.fingerprint()
        tweaked = bv4.copy()
        tweaked.x(0)
        assert tweaked.fingerprint() != bv4.fingerprint()

    def test_options_fingerprint(self):
        a = CompilerOptions.r_smt_star(omega=0.5)
        assert a.fingerprint() == CompilerOptions.r_smt_star().fingerprint()
        assert a.fingerprint() != \
            CompilerOptions.r_smt_star(omega=1.0).fingerprint()
        assert a.fingerprint() != a.with_(peephole=True).fingerprint()

    def test_calibration_content_id(self):
        generator = CalibrationGenerator(ibmq16_topology(), seed=2019)
        again = CalibrationGenerator(ibmq16_topology(), seed=2019)
        assert generator.snapshot(0).content_id() == \
            again.snapshot(0).content_id()
        assert generator.snapshot(0).content_id() != \
            generator.snapshot(1).content_id()

    def test_compiled_fingerprint_stable_across_recompiles(self, cal):
        circuit = get_benchmark("BV4").build()
        options = CompilerOptions.r_smt_star()
        first = compile_circuit(circuit, cal, options)
        second = compile_circuit(circuit, cal, options)
        assert first.fingerprint() == second.fingerprint()

    def test_compile_key_components(self, cal):
        circuit = get_benchmark("BV4").build()
        options = CompilerOptions.r_smt_star()
        key = compile_key(circuit, cal, options)
        assert key == (circuit.fingerprint(), cal.content_id(),
                       options.fingerprint())


class TestCompileCache:
    def test_hit_on_identical_configuration(self, cal):
        cache = CompileCache()
        circuit = get_benchmark("BV4").build()
        options = CompilerOptions.r_smt_star()
        first, hit1 = cache.get_or_compile(circuit, cal, options)
        second, hit2 = cache.get_or_compile(circuit, cal, options)
        assert (hit1, hit2) == (False, True)
        assert first.fingerprint() == second.fingerprint()
        assert first.physical is second.physical
        # Hits are flagged and report no wall clock of their own — the
        # stored program's compile_time describes the original run.
        assert not first.cache_hit and second.cache_hit
        assert first.compile_time > 0.0 and second.compile_time == 0.0
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_rebuilt_circuit_still_hits(self, cal):
        cache = CompileCache()
        spec = get_benchmark("BV4")
        options = CompilerOptions.qiskit()
        cache.get_or_compile(spec.build(), cal, options)
        _, hit = cache.get_or_compile(spec.build(), cal, options)
        assert hit

    def test_distinct_options_miss(self, cal):
        cache = CompileCache()
        circuit = get_benchmark("BV4").build()
        cache.get_or_compile(circuit, cal, CompilerOptions.r_smt_star())
        _, hit = cache.get_or_compile(circuit, cal,
                                      CompilerOptions.t_smt_star())
        assert not hit
        assert len(cache) == 2

    def test_tables_shared_per_calibration(self, cal):
        cache = CompileCache()
        assert cache.tables_for(cal) is cache.tables_for(cal)


class TestTraceCache:
    def test_execute_reuses_trace(self, cal):
        compiled = compile_circuit(get_benchmark("BV4").build(), cal,
                                   CompilerOptions.r_smt_star())
        expected = get_benchmark("BV4").expected_output
        cache = TraceCache()
        plain = execute(compiled, cal, trials=TRIALS, seed=3,
                        expected=expected)
        first = execute(compiled, cal, trials=TRIALS, seed=3,
                        expected=expected, trace_cache=cache)
        second = execute(compiled, cal, trials=TRIALS, seed=3,
                         expected=expected, trace_cache=cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        # The cached trace changes nothing about the sampled law.
        assert first.counts == plain.counts == second.counts

    def test_exotic_noise_model_bypasses_cache(self, cal):
        class Tweaked(NoiseModel):
            def gate_error_probability(self, gate, concurrent_neighbors=0):
                return 0.0

        compiled = compile_circuit(get_benchmark("BV4").build(), cal,
                                   CompilerOptions.qiskit())
        cache = TraceCache()
        noise = Tweaked(cal)
        execute(compiled, cal, trials=8, seed=0, noise_model=noise,
                trace_cache=cache)
        execute(compiled, cal, trials=8, seed=0, noise_model=noise,
                trace_cache=cache)
        assert len(cache) == 0 and cache.stats.lookups == 0


class TestRunSweep:
    def test_serial_order_and_keys(self, cal):
        cells = make_cells(cal)
        sweep = run_sweep(cells)
        assert [r.key for r in sweep] == [c.key for c in cells]
        assert len(sweep.by_key()) == len(cells)

    def test_cache_hits_are_grid_determined(self, cal):
        cells = make_cells(cal, seeds=(0, 1, 2))
        sweep = run_sweep(cells)
        distinct = len({c.compile_key() for c in cells})
        assert sweep.compile_stats.misses == distinct
        assert sweep.compile_stats.hits == len(cells) - distinct
        assert sweep.trace_stats.hits == len(cells) - distinct

    def test_parallel_matches_serial_bit_for_bit(self, cal):
        cells = make_cells(cal)
        serial = run_sweep(cells, workers=0)
        parallel = run_sweep(cells, workers=2)
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert a.execution.counts == b.execution.counts
        assert parallel.compile_stats.hits == serial.compile_stats.hits
        assert parallel.trace_stats.hits == serial.trace_stats.hits

    def test_worker_count_independence(self, cal):
        cells = make_cells(cal, benchmarks=("BV4",), seeds=(0, 1, 2))
        reference = run_sweep(cells, workers=2)
        for workers in (3, 5):
            other = run_sweep(cells, workers=workers)
            for a, b in zip(reference, other):
                assert a.execution.counts == b.execution.counts
            assert other.compile_stats.hits == \
                reference.compile_stats.hits

    def test_compile_only_cells(self, cal):
        cells = make_cells(cal, seeds=(0,), simulate=False)
        sweep = run_sweep(cells)
        for result in sweep:
            assert result.execution is None
            with pytest.raises(ReproError):
                result.success_rate
        assert sweep.trace_stats.lookups == 0

    def test_duplicate_keys_rejected(self, cal):
        cells = make_cells(cal, seeds=(0,)) * 2
        with pytest.raises(ReproError):
            run_sweep(cells).by_key()

    def test_summary_renders(self, cal):
        sweep = run_sweep(make_cells(cal, benchmarks=("BV4",), seeds=(0,)))
        assert "compile cache" in sweep.summary()


class TestCompileAndRunWrapper:
    def test_matches_direct_pipeline(self, cal):
        spec = get_benchmark("BV4")
        options = CompilerOptions.r_smt_star()
        run = compile_and_run(spec.build(), spec.expected_output, cal,
                              options, trials=TRIALS, seed=5)
        compiled = compile_circuit(spec.build(), cal, options)
        direct = execute(compiled, cal, trials=TRIALS, seed=5,
                         expected=spec.expected_output)
        assert run.execution.counts == direct.counts
        assert run.benchmark == "BV4" and run.variant == "r-smt*"

    def test_shared_caches_across_calls(self, cal):
        spec = get_benchmark("BV4")
        compile_cache, trace_cache = CompileCache(), TraceCache()
        for seed in (0, 1):
            compile_and_run(spec.build(), spec.expected_output, cal,
                            CompilerOptions.qiskit(), trials=TRIALS,
                            seed=seed, compile_cache=compile_cache,
                            trace_cache=trace_cache)
        assert compile_cache.stats.hits == 1
        assert trace_cache.stats.hits == 1


class TestHarnessParallelism:
    def test_fig6_workers_equivalent(self):
        kwargs = dict(days=2, trials=64, benchmarks=("BV4",))
        assert run_fig6(**kwargs).success == \
            run_fig6(workers=2, **kwargs).success


class TestDegenerateGrids:
    def test_empty_grid_returns_well_formed_result(self):
        sweep = run_sweep([])
        assert len(sweep) == 0 and list(sweep) == []
        assert sweep.ok and sweep.failures == []
        assert sweep.compile_stats.lookups == 0
        assert sweep.failure_report() == ""
        assert "0 cells" in sweep.summary()

    def test_empty_grid_with_workers(self):
        assert len(run_sweep([], workers=4)) == 0

    def test_single_cell_with_wide_pool_runs_serially(self, cal):
        cells = make_cells(cal, benchmarks=("BV4",), seeds=(0,),
                           variants=[CompilerOptions.qiskit()])
        serial = run_sweep(cells)
        wide = run_sweep(cells, workers=8)
        assert wide.workers == 0  # one batch -> in-process path
        assert wide.ok
        assert wide.results[0].execution.counts == \
            serial.results[0].execution.counts


class TestFailureIsolation:
    """Organic (non-injected) failures take the same capture path as
    the fault harness's; see tests/test_faults.py for the chaos suite.
    """

    def make_oversized_cells(self, cal):
        # 20 program qubits cannot map onto the 16-qubit machine.
        too_big = Circuit(20, name="oversized")
        for q in range(20):
            too_big.h(q)
        too_big.cx(0, 19).measure_all()
        good = get_benchmark("BV4")
        return [
            SweepCell(circuit=good.build(), calibration=cal,
                      options=CompilerOptions.qiskit(),
                      expected=good.expected_output, trials=TRIALS,
                      seed=0, key="good-before"),
            SweepCell(circuit=too_big, calibration=cal,
                      options=CompilerOptions.qiskit(), trials=TRIALS,
                      seed=0, key="oversized"),
            SweepCell(circuit=good.build(), calibration=cal,
                      options=CompilerOptions.qiskit(),
                      expected=good.expected_output, trials=TRIALS,
                      seed=1, key="good-after"),
        ]

    def test_organic_failure_is_isolated(self, cal):
        sweep = run_sweep(self.make_oversized_cells(cal))
        assert [f.key for f in sweep.failures] == ["oversized"]
        failure = sweep.failures[0]
        assert failure.stage == "cell" and failure.attempts == 1
        assert failure.traceback  # full stack captured for debugging
        assert sweep.results[0].ok and sweep.results[2].ok
        assert "oversized" in sweep.failure_report()

    def test_organic_failure_strict_raises(self, cal):
        with pytest.raises(Exception) as excinfo:
            run_sweep(self.make_oversized_cells(cal), strict=True)
        assert isinstance(excinfo.value, ReproError)

    def test_failed_cell_success_rate_raises_informatively(self, cal):
        sweep = run_sweep(self.make_oversized_cells(cal))
        with pytest.raises(ReproError, match="failed"):
            sweep.results[1].success_rate
