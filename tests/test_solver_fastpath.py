"""Tests for the vectorized solver fast path and the portfolio.

Covers the determinism contracts the mapping pipeline relies on:

* the vector engine returns the same optimum as the generic reference
  engine on random assignment problems;
* the rank-2 pair-tensor factorization is admissible and rejects
  tensors it cannot represent;
* the portfolio returns the bit-identical assignment of the serial
  proof for every worker count (the ``solver_workers`` contract);
* warm starts are validated (garbage falls back to a cold search) and
  interrupted searches still return the best incumbent.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions
from repro.compiler.mapping import smt as smt_mod
from repro.compiler.mapping.smt import ReliabilitySmtMapper, reliability_model
from repro.hardware import (
    CalibrationGenerator,
    ReliabilityTables,
    square_topology,
)
from repro.programs import random_circuit
from repro.solver import (
    AllDifferent,
    BranchAndBoundSolver,
    Model,
    PairTerm,
    SumObjective,
    UnaryTerm,
)
from repro.solver.bounds import _factor_pair_tensor, compile_assignment
from repro.solver.portfolio import PortfolioSolver


def _random_qap(seed: int, n_vars: int = 4, n_vals: int = 6) -> Model:
    rng = np.random.default_rng(seed)
    unary = rng.uniform(0, 10, size=(n_vars, n_vals))
    pair = rng.uniform(0, 10, size=(n_vals, n_vals))
    m = Model()
    for i in range(n_vars):
        m.add_variable(f"q{i}", range(n_vals))
    m.add_constraint(AllDifferent([f"q{i}" for i in range(n_vars)]))
    terms = [UnaryTerm(f"q{i}", lambda v, i=i: float(unary[i][v]))
             for i in range(n_vars)]
    for i in range(n_vars - 1):
        terms.append(PairTerm(f"q{i}", f"q{i + 1}",
                              lambda a, b: float(pair[a][b])))
    m.objective = SumObjective(terms)
    return m


def _mapping_instance(n: int = 6, gates: int = 96, seed: int = 2019):
    circ = random_circuit(n, gates, seed=seed)
    topo = square_topology(max(n, 4))
    cal = CalibrationGenerator(topo, seed=2019).snapshot(0)
    tables = ReliabilityTables(cal)
    model, search_qubits = reliability_model(circ, cal, tables, 0.5)
    return circ, cal, tables, model, search_qubits


class TestEngineParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_vector_matches_generic_optimum(self, seed):
        m = _random_qap(seed)
        generic = BranchAndBoundSolver(engine="generic").solve(m)
        vector = BranchAndBoundSolver(engine="vector").solve(m)
        assert generic.optimal and vector.optimal
        assert vector.objective == pytest.approx(generic.objective,
                                                 abs=1e-9)
        assert vector.stats is not None
        assert vector.stats.engine == "vector"

    def test_auto_routes_assignment_models_to_vector(self):
        m = _random_qap(7)
        result = BranchAndBoundSolver(engine="auto").solve(m)
        assert result.stats is not None and result.stats.engine == "vector"

    def test_vector_matches_generic_on_mapping_model(self):
        _, cal, _, model, _ = _mapping_instance()
        syms = cal.topology.automorphisms()
        generic = BranchAndBoundSolver(engine="generic").solve(model)
        vector = BranchAndBoundSolver(engine="vector").solve(
            model, symmetries=syms)
        assert generic.optimal and vector.optimal
        assert vector.objective == pytest.approx(generic.objective,
                                                 abs=1e-9)


class TestPairFactorization:
    def test_rank2_tensor_recovered(self):
        rng = np.random.default_rng(5)
        base = rng.uniform(-5, 0, size=(5, 5))
        np.fill_diagonal(base, -np.inf)
        xs = rng.uniform(0.5, 3.0, size=4)
        ys = rng.uniform(0.0, 2.0, size=4)
        tensor = xs[:, None, None] * base + ys[:, None, None] * base.T
        fact = _factor_pair_tensor(tensor)
        assert fact is not None
        fb, fx, fy, fs = fact
        finite = np.isfinite(base)
        fit = (fx[:, None, None] * fb + fy[:, None, None] * fb.T
               + fs[:, None, None])
        # Admissibility: fit + slack dominates every finite entry.
        assert np.all(fit[:, finite] >= tensor[:, finite] - 1e-9)
        assert np.allclose(fit[:, finite], tensor[:, finite], atol=1e-6)

    def test_unrelated_slices_rejected(self):
        rng = np.random.default_rng(6)
        t0 = rng.uniform(-5, 0, size=(4, 4))
        t1 = rng.uniform(-5, 0, size=(4, 4))
        tensor = np.stack([t0, t1])
        assert _factor_pair_tensor(tensor) is None

    def test_mapping_model_factorizes(self):
        """R-SMT* tensors are count_fwd*L + count_rev*L.T by design."""
        _, _, _, model, _ = _mapping_instance()
        mats = compile_assignment(model)
        assert mats is not None
        assert mats.pair_base is not None
        assert np.all(mats.pair_slack >= 0.0)


class TestPortfolioIdentity:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_bit_identical_to_serial(self, seed):
        circ, cal, tables, model, sq = _mapping_instance(
            n=6, gates=64, seed=seed)
        syms = cal.topology.automorphisms()
        warm = smt_mod._greedy_warm_start(circ, cal, tables, sq)
        serial = BranchAndBoundSolver(engine="vector").solve(
            model, initial=warm, symmetries=syms)
        portfolio = PortfolioSolver(workers=2).solve(
            model, initial=warm, symmetries=syms)
        assert serial.optimal and portfolio.optimal
        assert portfolio.objective == serial.objective  # bit-identical
        assert portfolio.assignment == serial.assignment

    def test_prefix_tasks_cover_root_plan(self):
        from repro.solver.bounds import VectorSearch

        _, cal, _, model, _ = _mapping_instance()
        mats = compile_assignment(model)
        plan = VectorSearch(mats)
        plan.enable_symmetry(cal.topology.automorphisms())
        plan.enable_dominance()
        prefixes = plan.prefix_tasks()
        roots = [p[0] for p in prefixes]
        # Depth-2 prefixes stay grouped under their root candidate, in
        # the root plan's order (lexicographic first-visit order).
        expected = [int(c) for c in plan.root_candidates()
                    if any(r == int(c) for r in roots)]
        seen = list(dict.fromkeys(roots))
        assert seen == expected
        assert all(len(p) == 2 for p in prefixes)

    def test_single_worker_uses_serial_engine(self):
        _, _, _, model, _ = _mapping_instance()
        result = PortfolioSolver(workers=1).solve(model)
        assert result.stats is not None
        assert result.stats.engine != "portfolio"


class TestWarmStartAndBudget:
    def test_invalid_warm_start_falls_back_cold(self):
        m = _random_qap(21)
        cold = BranchAndBoundSolver(engine="vector").solve(m)
        garbage = {f"q{i}": 0 for i in range(4)}  # violates AllDifferent
        warm = BranchAndBoundSolver(engine="vector").solve(
            m, initial=garbage)
        assert warm.optimal
        assert warm.objective == pytest.approx(cold.objective, abs=1e-12)

    def test_mapper_survives_garbage_warm_start(self, monkeypatch):
        circ, cal, tables, model, sq = _mapping_instance()
        expect = ReliabilitySmtMapper(CompilerOptions()).run(circ, cal, tables)
        monkeypatch.setattr(
            smt_mod, "_greedy_warm_start",
            lambda *a, **k: {smt_mod._var(q): 0 for q in sq})
        out = ReliabilitySmtMapper(CompilerOptions()).run(circ, cal, tables)
        assert out.optimal
        assert out.objective == pytest.approx(expect.objective, abs=1e-9)

    def test_node_budget_returns_best_incumbent(self):
        circ, cal, tables, model, sq = _mapping_instance(gates=128)
        warm = smt_mod._greedy_warm_start(circ, cal, tables, sq)
        warm_value = model.objective.value(warm)
        result = BranchAndBoundSolver(engine="vector", node_limit=5).solve(
            model, initial=warm)
        assert not result.optimal
        assert result.assignment is not None
        assert result.objective >= warm_value - 1e-12

    def test_solver_workers_option_reports_portfolio_engine(self):
        circ, cal, tables, _, _ = _mapping_instance()
        options = CompilerOptions(solver_workers=2)
        out = ReliabilitySmtMapper(options).run(circ, cal, tables)
        serial = ReliabilitySmtMapper(CompilerOptions()).run(circ, cal, tables)
        assert out.stats is not None
        assert out.stats["engine"] == "portfolio"
        assert out.objective == serial.objective
        assert out.placement == serial.placement
