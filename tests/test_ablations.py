"""Tests for the ablation-study harnesses."""

import pytest

from repro.experiments.ablations import (
    run_convention_ablation,
    run_omega_sweep,
    run_peephole_ablation,
)


class TestOmegaSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_omega_sweep(benchmarks=("BV4",), omegas=(0.0, 0.5, 1.0),
                               trials=128)

    def test_grid_covered(self, result):
        assert result.omegas == [0.0, 0.5, 1.0]
        assert set(result.success["BV4"]) == {0.0, 0.5, 1.0}

    def test_best_omega_in_grid(self, result):
        assert result.best_omega("BV4") in (0.0, 0.5, 1.0)

    def test_to_text(self, result):
        assert "w=0.5" in result.to_text()


class TestPeepholeAblation:
    def test_rows_and_monotonicity(self):
        result = run_peephole_ablation(trials=128,
                                       subset=["BV4", "Toffoli"])
        assert len(result.rows) == 2
        for name, before, after, _, _ in result.rows:
            assert after <= before
        assert "peephole" in result.to_text()


class TestConventionAblation:
    def test_round_trip_bounded_by_one_way(self):
        result = run_convention_ablation(trials=128, subset=["BV4", "Or"])
        for name, one_way, round_trip, measured in result.rows:
            assert round_trip <= one_way + 1e-12
            assert 0.0 <= measured <= 1.0
        assert result.mean_abs_error("one-way") >= 0.0
        assert "measured" in result.to_text()
